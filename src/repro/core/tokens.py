"""Token bookkeeping for the GSS flow control algorithm (Algorithm 1).

Every memory-request packet queued at a GSS flow controller holds a token
count ``t_i``:

* when a new packet arrives, every already-queued packet gains one token
  (line 3 — aging, for starvation freedom);
* a new best-effort packet starts with one token (line 11);
* a new priority packet starts with the *priority control token* PCT,
  a user knob between 2 and 6 (line 9) — PCT=1 would degenerate to a
  priority-equal scheduler and PCT=max to a priority-first scheduler;
* when a new priority packet arrives, older best-effort packets addressing
  the *same bank* are excluded from scheduling until that priority packet
  has been scheduled (lines 4–6).

The exclusion is scoped to packets waiting in *other* input buffers than
the priority packet's own: with in-order (wormhole) input buffers, a packet
queued ahead of the priority packet in the same buffer must drain for the
priority packet to reach the arbiter at all, so excluding it would deadlock
the channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..noc.packet import Packet
from ..noc.topology import Port

#: Maximum token tier of the Fig. 4 filter chains.
MAX_TOKENS = 6

#: Arrival aging saturates here (tier 4: bank conflict and data contention
#: still enforced).  The permissive tiers 5-6 are reachable only through the
#: Algorithm 1 line 19-24 escape loop, i.e. when nothing else can be
#: scheduled at all — so mere queue age never schedules a bank conflict
#: while a conflict-free alternative exists.
ARRIVAL_AGING_CAP = 4


@dataclass
class TokenEntry:
    """Per-queued-packet scheduling state."""

    packet: Packet
    port: Port
    tokens: int
    arrival_cycle: int


class TokenTable:
    """Tracks tokens and priority-exclusion state for one GSS controller."""

    def __init__(self, pct: int) -> None:
        if not 1 <= pct <= MAX_TOKENS:
            raise ValueError(f"PCT must be in 1..{MAX_TOKENS}, got {pct}")
        self.pct = pct
        self._entries: Dict[int, TokenEntry] = {}
        # Pending (not yet scheduled) priority packets: id -> (bank, port).
        self._pending_priority: Dict[int, Tuple[int, Port]] = {}

    # ------------------------------------------------------------------ #
    # Algorithm 1, lines 1-13: arrival
    # ------------------------------------------------------------------ #

    def on_arrival(self, port: Port, packet: Packet, cycle: int) -> None:
        if packet.request is None:
            raise ValueError("token table only tracks memory request packets")
        for entry in self._entries.values():
            if entry.tokens < ARRIVAL_AGING_CAP:
                entry.tokens += 1
        initial = self.pct if packet.is_priority else 1
        self._entries[packet.packet_id] = TokenEntry(
            packet=packet, port=port, tokens=initial, arrival_cycle=cycle
        )
        if packet.is_priority:
            self._pending_priority[packet.packet_id] = (packet.request.bank, port)

    # ------------------------------------------------------------------ #
    # Algorithm 1, lines 19-24: starvation escape
    # ------------------------------------------------------------------ #

    def age_all(self) -> None:
        """Give every queued packet one extra token (line 21)."""
        for entry in self._entries.values():
            entry.tokens = min(MAX_TOKENS, entry.tokens + 1)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def entry(self, packet: Packet) -> TokenEntry:
        found = self._entries.get(packet.packet_id)
        if found is None:
            raise KeyError(f"packet {packet.packet_id} not tracked")
        return found

    def tokens(self, packet: Packet) -> int:
        return self.entry(packet).tokens

    def is_excluded(self, packet: Packet, port: Port) -> bool:
        """Lines 4-6: best-effort packet blocked by a same-bank pending
        priority packet waiting in a *different* input buffer."""
        if not self._pending_priority:
            return False
        if packet.is_priority or packet.request is None:
            return False
        bank = packet.request.bank
        return any(
            p_bank == bank and p_port != port
            for p_bank, p_port in self._pending_priority.values()
        )

    # ------------------------------------------------------------------ #
    # Retirement
    # ------------------------------------------------------------------ #

    def on_scheduled(self, packet: Packet) -> None:
        self._entries.pop(packet.packet_id, None)
        self._pending_priority.pop(packet.packet_id, None)

    def __len__(self) -> int:
        return len(self._entries)

    # --- introspection (invariant checking) --------------------------- #

    def tracked_packet_ids(self) -> set:
        return set(self._entries)

    def token_counts(self) -> List[Tuple[int, Packet]]:
        return [(e.tokens, e.packet) for e in self._entries.values()]

    @property
    def pending_priority_banks(self) -> List[int]:
        return [bank for bank, _ in self._pending_priority.values()]
