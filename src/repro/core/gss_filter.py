"""The Fig. 4 filter chains and selection cascade.

Candidates enter token-tiered tables ``T(1) .. T(6)`` according to how many
tokens they hold; every candidate additionally enters ``T(0)`` (Algorithm 1,
lines 16-17).  Each tier is filtered against the SDRAM conditions relative
to the last scheduled packet ``h(n)``:

* **bank conflict** — same bank, different row (the costliest condition);
* **data contention** — read/write direction flips on the bidirectional
  data bus;
* **short turn-around bank interleaving (STI)** — the candidate's bank has
  not finished its deactivate/re-activate window since its last access
  (only in the Fig. 4(b) variant, worth it for high-clock DDR III).

The higher a candidate's tier (more tokens — i.e. older, or priority with a
large PCT), the fewer conditions it must satisfy, so starved and priority
packets escape the filter progressively.  The filtered outputs feed the
``SP = A ? B ? C`` cascade: a passing *priority* packet with the most tokens
wins first; otherwise a passing *row-buffer-hit* candidate from ``T_o(0)``
(the likely next short packet split from the same SAGM parent — Section
IV-C); otherwise a passing best-effort packet with the most tokens.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..dram.request import MemoryRequest
from ..noc.flow_control import Candidate
from .tokens import MAX_TOKENS, TokenTable


@dataclass
class SchedulerState:
    """SDRAM-visible state a GSS flow controller maintains (Section IV-B).

    The short-turnaround condition is tracked two ways:

    * the paper's per-bank cycle counters, armed to tWR+tRP (write) / tRP
      (read) when a packet finishes delivery — exact when the memory
      pipeline behind the router is shallow;
    * a *schedule-distance* window over the last ``sti_distance`` scheduled
      packets: because the downstream pipeline serves packets in this
      router's order, two same-bank different-row packets closer than the
      turnaround time (in packet-service slots) will stall the in-order
      controller no matter when they physically arrive.  This keeps the
      condition meaningful when queueing delays outgrow the raw counters.
    """

    last_request: Optional[MemoryRequest] = None
    #: Per-bank cycle until which re-activation stalls (the STI counters,
    #: set to tWR+tRP after a write and tRP after a read).
    bank_ready_at: Dict[int, int] = field(default_factory=dict)
    #: Row each bank was last scheduled to (a row hit needs no reactivation).
    bank_last_row: Dict[int, int] = field(default_factory=dict)
    #: Same-bank reuse window, in scheduled packets.
    sti_distance: int = 0
    recent: Deque = field(default_factory=deque)

    def bank_conflict(self, request: MemoryRequest) -> bool:
        return self.last_request is not None and request.bank_conflict_with(
            self.last_request
        )

    def data_contention(self, request: MemoryRequest) -> bool:
        return self.last_request is not None and request.data_contention_with(
            self.last_request
        )

    def row_hit(self, request: MemoryRequest) -> bool:
        return self.last_request is not None and request.row_hit_with(
            self.last_request
        )

    def sti_blocked(self, request: MemoryRequest, cycle: int) -> bool:
        """Bank still in its turn-around window and the access would need a
        fresh activation (a row hit re-uses the open row: no STI issue)."""
        if self.bank_last_row.get(request.bank) == request.row:
            return False
        if self.bank_ready_at.get(request.bank, 0) > cycle:
            return True
        return any(
            bank == request.bank and row != request.row
            for bank, row in self.recent
        )

    def note_scheduled(self, request: MemoryRequest) -> None:
        self.last_request = request
        self.bank_last_row[request.bank] = request.row
        if self.sti_distance > 0:
            self.recent.append((request.bank, request.row))
            if len(self.recent) > self.sti_distance:
                self.recent.popleft()

    def note_delivered(
        self, request: MemoryRequest, cycle: int, write_window: int, read_window: int
    ) -> None:
        window = write_window if request.is_write else read_window
        self.bank_ready_at[request.bank] = cycle + window


def tier_conditions(tokens: int, sti_enabled: bool) -> Tuple[bool, bool, bool]:
    """Which conditions tier ``tokens`` must satisfy:
    returns (check_bank_conflict, check_data_contention, check_sti).

    Conditions relax with seniority: the short-turnaround and contention
    checks are released at tier 5, the bank-conflict check only at the
    maximum tier (the Algorithm 1 escape loop's last resort)."""
    if tokens >= MAX_TOKENS:
        return (False, False, False)
    if tokens >= 5:
        return (True, False, False)
    return (True, True, sti_enabled and tokens <= 2)


#: ``tier_conditions`` memoized per tier (it is pure); tiers above
#: MAX_TOKENS share the unconditional-accept row.
_TIER_TABLE = {
    False: [tier_conditions(t, False) for t in range(MAX_TOKENS + 1)],
    True: [tier_conditions(t, True) for t in range(MAX_TOKENS + 1)],
}


def passes_filter(
    state: SchedulerState,
    request: MemoryRequest,
    tokens: int,
    cycle: int,
    sti_enabled: bool,
) -> bool:
    """Does this candidate pass its token tier's filter (Fig. 4)?

    A row-buffer hit always passes: it is the condition the paper's
    scheduler *encourages* (it implies no bank conflict, and back-to-back
    same-direction split packets dominate the row-hit case).
    """
    last = state.last_request
    if last is not None and request.row_hit_with(last):
        return True
    check_bc, check_dc, check_sti = _TIER_TABLE[sti_enabled][
        tokens if tokens < MAX_TOKENS else MAX_TOKENS
    ]
    if check_bc and last is not None and request.bank_conflict_with(last):
        return False
    if check_dc and last is not None and request.data_contention_with(last):
        return False
    if check_sti and state.sti_blocked(request, cycle):
        return False
    return True


def select(
    state: SchedulerState,
    table: TokenTable,
    candidates: Sequence[Candidate],
    cycle: int,
    sti_enabled: bool,
    priority_aware: bool = True,
    row_hit_stage: bool = True,
) -> Optional[Candidate]:
    """Run the Fig. 4 cascade; age tokens (lines 19-24) until someone passes.

    With ``priority_aware`` False the cascade skips the priority stage and
    with ``row_hit_stage`` False it also skips the ``T_o(0)`` row-hit stage
    — together that is the SDRAM-aware baseline [4]: a priority-equal,
    oldest-first scheduler that merely avoids bad SDRAM conditions.  The
    ``T_o(0)`` preference is this paper's addition (it keeps SAGM split
    chains together, Section IV-B).
    """
    eligible = [
        c for c in candidates if not table.is_excluded(c[1], c[0])
    ]
    if not eligible:
        return None
    # Lines 19-24: if nothing passes, grant extra tokens and retry.  The
    # extra tokens are applied transiently (per arbitration) rather than
    # written back: a forced lax-tier schedule should not permanently
    # weaken the SDRAM filters for every packet still queued.
    if len(eligible) == 1:
        # Every cascade stage returns a member of ``passing``, so with a
        # single eligible candidate the only question is which bump tier
        # first lets it through — the cascade itself is a tautology.
        lone = eligible[0]
        request = lone[1].request
        tokens = table.tokens(lone[1])
        for bump in range(MAX_TOKENS + 1):
            if passes_filter(state, request, tokens + bump, cycle,
                             sti_enabled):
                return lone
        raise AssertionError("GSS filter failed to converge")
    tiers = [(c, table.tokens(c[1])) for c in eligible]
    for bump in range(MAX_TOKENS + 1):
        passing = [
            c
            for c, tokens in tiers
            if passes_filter(state, c[1].request, tokens + bump, cycle,
                             sti_enabled)
        ]
        if passing:
            return _cascade(state, table, passing, priority_aware,
                            row_hit_stage, cycle=cycle,
                            sti_enabled=sti_enabled)
    # Unreachable: at MAX_TOKENS the filter accepts everything.
    raise AssertionError("GSS filter failed to converge")


def _cascade(
    state: SchedulerState,
    table: TokenTable,
    passing: List[Candidate],
    priority_aware: bool,
    row_hit_stage: bool,
    cycle: int = 0,
    sti_enabled: bool = False,
) -> Candidate:
    """SP = A ? B ? C (Fig. 4): priority > row-hit (T_o(0)) > best-effort.

    With STI enabled, candidates whose bank is still inside its
    turn-around window rank behind ready-bank candidates of the same
    stage — a preference, so a turnaround-bound packet is only delayed
    while a better-ordered alternative actually exists (Fig. 4(b)).
    """
    if len(passing) == 1:
        # All three stages return a member of ``passing``.
        return passing[0]

    def seniority(candidate: Candidate):
        entry = table.entry(candidate[1])
        ready = 1
        if sti_enabled and state.sti_blocked(candidate[1].request, cycle):
            ready = 0
        return (ready, entry.tokens, -entry.arrival_cycle)

    if priority_aware:
        priority = [c for c in passing if c[1].is_priority]
        if priority:
            return max(priority, key=seniority)
    if row_hit_stage:
        row_hits = [c for c in passing if state.row_hit(c[1].request)]
        if row_hits:
            return max(row_hits, key=seniority)
    return max(passing, key=seniority)
