"""GSS flow controller (Algorithm 1) and the SDRAM-aware baseline [4].

The :class:`GssFlowController` is the paper's guaranteed-SDRAM-service
scheduler for memory-request packets contending for one output channel
toward the memory subsystem.  It composes

* the :class:`~repro.core.tokens.TokenTable` (arrival aging, PCT grant,
  same-bank best-effort exclusion under a pending priority packet), and
* the Fig. 4 tiered filter + ``A ? B ? C`` cascade in
  :mod:`repro.core.gss_filter`,

and maintains the per-bank STI counters: when a packet finishes delivery to
the next router, its bank's counter is set to ``tWR + tRP`` cycles for a
write and ``tRP`` for a read (Section IV-B), counting down implicitly
against the current cycle.

:class:`SdramAwareFlowController` is the state-of-the-art baseline [4]
expressed in the same machinery: a priority-equal scheduler (every packet
enters with one token; the cascade skips the priority stage; no exclusion),
which the paper itself notes is the PCT=1 degenerate case of GSS.
:class:`PfsMemoryFlowController` wraps either scheduler with a
priority-first bypass, building the CONV+PFS / [4]+PFS comparison points.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..dram.timing import DramTiming
from ..noc.flow_control import Candidate, MemoryFlowController
from ..noc.packet import Packet
from ..noc.topology import Port
from ..obs.events import EventType
from .gss_filter import SchedulerState, select
from .tokens import TokenTable


class GssFlowController(MemoryFlowController):
    """Guaranteed SDRAM service flow control (the paper's Algorithm 1)."""

    #: Subclasses override these to get the priority-equal [4] behaviour.
    priority_aware = True
    row_hit_stage = True

    def __init__(
        self,
        timing: DramTiming,
        pct: int = 5,
        sti_enabled: bool = False,
        tracer=None,
        trace_label: str = "gss",
    ) -> None:
        self.timing = timing
        self.sti_enabled = sti_enabled
        self.table = TokenTable(pct=self._initial_pct(pct))
        self.state = SchedulerState()
        if sti_enabled:
            # Same-bank reuse window in scheduled packets: the write
            # turn-around time divided by a typical burst service slot.
            self.state.sti_distance = max(
                2, -(-timing.write_to_precharge // 4)
            )
        self.scheduled_count = 0
        self.tracer = tracer
        self.trace_label = trace_label

    def _initial_pct(self, pct: int) -> int:
        return pct

    # ------------------------------------------------------------------ #
    # FlowController interface
    # ------------------------------------------------------------------ #

    def on_arrival(self, port: Port, packet: Packet, cycle: int) -> None:
        self.table.on_arrival(port, packet, cycle)

    def pick(self, candidates: Sequence[Candidate], cycle: int) -> Optional[Candidate]:
        if not candidates:
            return None
        return select(
            self.state,
            self.table,
            candidates,
            cycle,
            sti_enabled=self.sti_enabled,
            priority_aware=self.priority_aware,
            row_hit_stage=self.row_hit_stage,
        )

    def on_scheduled(self, port: Port, packet: Packet, cycle: int) -> None:
        assert packet.request is not None
        self.table.on_scheduled(packet)
        self.state.note_scheduled(packet.request)
        self.scheduled_count += 1
        tracer = self.tracer
        if tracer:
            request = packet.request
            tracer.emit(
                EventType.ARB_GRANT,
                cycle,
                self.trace_label,
                packet_id=packet.packet_id,
                request_id=request.request_id,
                bank=request.bank,
                priority=packet.is_priority,
            )

    def on_delivered(self, packet: Packet, cycle: int) -> None:
        if packet.request is None:
            return
        self.state.note_delivered(
            packet.request,
            cycle,
            write_window=self.timing.write_to_precharge,
            read_window=self.timing.read_to_precharge,
        )

    def on_withdrawn(self, packet: Packet, cycle: int) -> None:
        # Adaptive routing: another output claimed the packet; release the
        # token entry and any priority-exclusion it was enforcing.
        self.table.on_scheduled(packet)

    def tracked_packet_ids(self):
        return self.table.tracked_packet_ids()

    def token_counts(self):
        return self.table.token_counts()


class SdramAwareFlowController(GssFlowController):
    """The SDRAM-aware NoC baseline [4]: priority-equal GSS (PCT = 1).

    [4] schedules oldest-first among SDRAM-friendly candidates; it lacks
    both the priority stage and this paper's row-hit ``T_o(0)`` stage.
    """

    priority_aware = False
    row_hit_stage = False

    def _initial_pct(self, pct: int) -> int:
        return 1

    def on_arrival(self, port: Port, packet: Packet, cycle: int) -> None:
        super().on_arrival(port, packet, cycle)
        # [4] has no priority semantics: drop the exclusion bookkeeping.
        self.table._pending_priority.clear()


class PfsMemoryFlowController(MemoryFlowController):
    """Priority-first service in front of an SDRAM-aware scheduler.

    Used for the [4]+PFS configuration: priority packets bypass the SDRAM
    scheduling entirely (oldest priority packet wins unconditionally), and
    best-effort packets fall through to the wrapped scheduler.  This is the
    Fig. 1(c) behaviour whose utilization penalty motivates GSS.
    """

    def __init__(self, inner: GssFlowController) -> None:
        self.inner = inner

    def on_arrival(self, port: Port, packet: Packet, cycle: int) -> None:
        self.inner.on_arrival(port, packet, cycle)

    def pick(self, candidates: Sequence[Candidate], cycle: int) -> Optional[Candidate]:
        priority = [c for c in candidates if c[1].is_priority]
        if priority:
            return min(priority, key=lambda c: c[1].created_cycle)
        return self.inner.pick(candidates, cycle)

    def on_scheduled(self, port: Port, packet: Packet, cycle: int) -> None:
        self.inner.on_scheduled(port, packet, cycle)

    def on_delivered(self, packet: Packet, cycle: int) -> None:
        self.inner.on_delivered(packet, cycle)

    def on_withdrawn(self, packet: Packet, cycle: int) -> None:
        self.inner.on_withdrawn(packet, cycle)

    def tracked_packet_ids(self):
        return self.inner.tracked_packet_ids()

    def token_counts(self):
        return self.inner.token_counts()
