"""The paper's contribution: GSS flow control, SAGM, and system assembly."""

from .gss_filter import SchedulerState, passes_filter, select, tier_conditions
from .gss_flow_control import (
    GssFlowController,
    PfsMemoryFlowController,
    SdramAwareFlowController,
)
from .gss_router import (
    conventional_controller,
    design_controller_factory,
    gss_controller,
    sdram_aware_controller,
    sdram_aware_pfs_controller,
)
from .sagm import SagmSplitter, split_plan
from .system import SocSystem, build_system, run_config
from .tokens import MAX_TOKENS, TokenEntry, TokenTable

__all__ = [
    "GssFlowController",
    "MAX_TOKENS",
    "PfsMemoryFlowController",
    "SagmSplitter",
    "SchedulerState",
    "SdramAwareFlowController",
    "SocSystem",
    "TokenEntry",
    "TokenTable",
    "build_system",
    "conventional_controller",
    "design_controller_factory",
    "gss_controller",
    "passes_filter",
    "run_config",
    "sdram_aware_controller",
    "sdram_aware_pfs_controller",
    "select",
    "split_plan",
    "tier_conditions",
]
