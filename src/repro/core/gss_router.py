"""Router flow-controller assembly per NoC design (Fig. 3).

Each design in the paper's comparison equips its routers differently:

* CONV — a plain round-robin flow controller;
* CONV+PFS — priority-first service on every channel;
* [4] — the Fig. 3 parallel split with the SDRAM-aware scheduler;
* [4]+PFS — the same with a priority-first bypass in front;
* GSS / GSS+SAGM — the Fig. 3 split with the GSS flow controller, possibly
  deployed on only the ``k`` routers nearest the memory corner (Fig. 8),
  the rest keeping the conventional priority-first/round-robin controller.

:func:`design_controller_factory` builds the ``(node, port) ->
FlowController`` factory the :class:`~repro.noc.router.Router` consumes.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from ..dram.timing import DramTiming
from ..noc.flow_control import (
    DualFlowController,
    FlowController,
    PriorityFirstFlowController,
    RoundRobinFlowController,
)
from ..noc.router import ControllerFactory
from ..noc.topology import Port
from ..sim.config import NocDesign
from .gss_flow_control import (
    GssFlowController,
    PfsMemoryFlowController,
    SdramAwareFlowController,
)


def gss_controller(
    timing: DramTiming,
    pct: int = 5,
    sti: bool = False,
    tracer=None,
    trace_label: str = "gss",
) -> DualFlowController:
    """One GSS channel controller (Fig. 3's parallel organization)."""
    return DualFlowController(
        GssFlowController(
            timing, pct=pct, sti_enabled=sti,
            tracer=tracer, trace_label=trace_label,
        )
    )


def sdram_aware_controller(
    timing: DramTiming, tracer=None, trace_label: str = "gss"
) -> DualFlowController:
    """One [4] channel controller."""
    return DualFlowController(
        SdramAwareFlowController(timing, tracer=tracer, trace_label=trace_label)
    )


def sdram_aware_pfs_controller(
    timing: DramTiming, tracer=None, trace_label: str = "gss"
) -> DualFlowController:
    """One [4]+PFS channel controller (priority-first bypass in front)."""
    return DualFlowController(
        PfsMemoryFlowController(
            SdramAwareFlowController(
                timing, tracer=tracer, trace_label=trace_label
            )
        ),
        normal_controller=PriorityFirstFlowController(),
    )


def conventional_controller(priority_first: bool) -> FlowController:
    """The non-GSS router's controller (Fig. 8's replacement baseline)."""
    if priority_first:
        return PriorityFirstFlowController()
    return RoundRobinFlowController()


def design_controller_factory(
    design: NocDesign,
    timing: DramTiming,
    gss_nodes: Optional[Iterable[int]] = None,
    pct: int = 5,
    sti: bool = False,
    priority_enabled: bool = False,
    tracer=None,
) -> ControllerFactory:
    """Build the per-router flow-controller factory for ``design``.

    ``gss_nodes`` restricts GSS deployment to specific routers (the Fig. 8
    sweep); routers outside the set get the conventional priority-first /
    round-robin controller.
    """
    gss_set: Set[int] = set(gss_nodes) if gss_nodes is not None else set()

    def factory(node: int, port: Port) -> FlowController:
        label = f"gss{node}.{port.name.lower()}"
        if design is NocDesign.CONV:
            return RoundRobinFlowController()
        if design is NocDesign.CONV_PFS:
            return PriorityFirstFlowController()
        if design is NocDesign.SDRAM_AWARE:
            return sdram_aware_controller(timing, tracer=tracer, trace_label=label)
        if design is NocDesign.SDRAM_AWARE_PFS:
            return sdram_aware_pfs_controller(
                timing, tracer=tracer, trace_label=label
            )
        # GSS / GSS+SAGM, possibly partially deployed
        if node in gss_set:
            return gss_controller(
                timing, pct=pct, sti=sti, tracer=tracer, trace_label=label
            )
        return conventional_controller(priority_first=priority_enabled)

    return factory
