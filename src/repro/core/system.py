"""Full-system assembly: application + NoC design + memory subsystem.

:func:`build_system` turns a :class:`~repro.sim.config.SystemConfig` into a
runnable :class:`SocSystem`:

* the application model's cores are placed on the mesh (Fig. 7);
* every router gets the flow controllers its design prescribes — including
  *partial* GSS deployment for the Fig. 8 sweep, where only the ``k``
  routers closest to the memory corner are GSS and the rest keep the
  conventional priority-first/round-robin controller;
* the matching memory subsystem is attached at the memory corner node;
* with SAGM enabled, every core's network interface splits requests at the
  SDRAM access granularity and tags the last short packet for
  auto-precharge.
"""

from __future__ import annotations

from dataclasses import replace
from itertools import count
from typing import Dict, List, Optional

from ..dram.subsystem import build_memory_subsystem
from ..dram.timing import DramTiming
from ..noc.flow_control import FlowController
from ..noc.interface import CoreInterface, MemoryInterface
from ..noc.network import MeshNetwork
from ..noc.routing import RoutingPolicy
from ..noc.topology import Port
from ..sim.config import DdrGeneration, NocDesign, SystemConfig
from ..sim.engine import Simulator
from ..sim.stats import RunMetrics, StatsCollector
from ..workloads.apps import get_app_model
from ..workloads.cores import SyntheticCore
from ..workloads.mapping import gss_router_order, place
from .gss_router import design_controller_factory
from .sagm import SagmSplitter


class SocSystem:
    """A fully wired system ready to simulate.

    ``tracer`` (any :class:`~repro.obs.tracer.Tracer`) threads through every
    layer — NIs, routers, GSS controllers, MemMax, command engine, device —
    so one object collects the full packet lifecycle.  The default ``None``
    keeps every emission site on its zero-cost fast path.
    ``keep_samples`` retains per-completion latency samples so percentiles
    can be reported after the run.
    """

    def __init__(
        self,
        config: SystemConfig,
        tracer=None,
        keep_samples: bool = False,
    ) -> None:
        self.config = config
        self.tracer = tracer
        self.stats = StatsCollector(
            warmup=config.warmup, keep_samples=keep_samples
        )
        self.app = get_app_model(config.app)
        self.placement = place(self.app)
        self.timing = DramTiming.for_clock(config.ddr, config.clock_mhz)
        self.device, self.subsystem = build_memory_subsystem(
            config, self.stats, tracer=tracer
        )
        # Fault injection / protection (imported lazily: ``faults=None``
        # — the default — builds none of it and touches no resilience
        # module at all).
        self.fault_injector = None
        self.resilience = None
        if config.faults is not None:
            from ..resilience.faults import FaultInjector
            from ..resilience.protection import ResilienceController

            self.fault_injector = FaultInjector(
                config.faults, seed=config.seed, tracer=tracer
            )
            self.resilience = ResilienceController(
                self.fault_injector, config.faults, tracer=tracer
            )
        self.gss_nodes = self._gss_nodes()
        self.network = MeshNetwork(
            self.placement.mesh,
            controller_factory=self._controller_for,
            buffer_flits=config.link_buffer_flits,
            local_buffer_flits=config.input_buffer_flits,
            routing_policy=(
                RoutingPolicy.WEST_FIRST if config.adaptive_routing
                else RoutingPolicy.XY
            ),
            virtual_channels=config.virtual_channels,
            # Shallow memory-side sink: flit space for the largest write
            # packet (64 beats = 32 flits) but only a few request slots.
            # Deep buffering past the final GSS arbitration point would
            # turn into a FIFO priority packets cannot overtake.
            sink_flits={self.placement.memory_node: (36, 4)},
            tracer=tracer,
            fault_injector=self.fault_injector,
        )
        if self.fault_injector is not None:
            self.fault_injector.attach_network(self.network)
        self._request_ids = count()
        self._packet_ids = count()
        self.cores: List[SyntheticCore] = []
        self.core_interfaces: List[CoreInterface] = []
        self._build_cores()
        self.memory_interface = MemoryInterface(
            node=self.placement.memory_node,
            subsystem=self.subsystem,
            sink=self.network.local_sink(self.placement.memory_node),
            injection_buffer=self.network.injection_buffer(self.placement.memory_node),
            master_nodes={
                core.master: self.placement.node_of_core(i)
                for i, core in enumerate(self.cores)
            },
            packet_ids=self._packet_ids,
            # QoS-aware designs dequeue priority read data first (CONV
            # without PFS has no priority notion anywhere).
            priority_responses=(
                config.priority_enabled and config.design is not NocDesign.CONV
            ),
            tracer=tracer,
            resilience=self.resilience,
        )
        self.simulator = Simulator()
        self.watchdog = None
        if self.resilience is not None:
            for interface in self.core_interfaces:
                self.resilience.register_core(
                    interface.generator.master, interface
                )
            self.resilience.attach_memory(self.memory_interface)
            # The controller ticks first so retransmissions released this
            # cycle reach the NIs before they inject.
            self.simulator.add(self.resilience)
        self.simulator.add_all(self.core_interfaces)
        self.simulator.add(self.network)
        self.simulator.add(self.memory_interface)
        if self.resilience is not None:
            from ..resilience.watchdog import RequestWatchdog

            # The watchdog ticks last: it must see this cycle's response
            # deliveries before judging a request stalled.
            self.watchdog = RequestWatchdog(
                self.resilience, self.core_interfaces, config.faults
            )
            self.simulator.add(self.watchdog)
        #: Attached by :meth:`attach_sampler`; None = zero sampling code
        #: anywhere near the hot path.
        self.sampler = None
        self.invariant_checker = None
        if config.check_invariants:
            from ..resilience.invariants import InvariantChecker

            self.invariant_checker = InvariantChecker(
                self.network,
                max_packet_age=(
                    config.faults.max_packet_age
                    if config.faults is not None
                    else 16384
                ),
                tracer=tracer,
            )
            self.invariant_checker.attach(self.simulator)

    # ------------------------------------------------------------------ #
    # Construction details
    # ------------------------------------------------------------------ #

    def _gss_nodes(self) -> set:
        """Which routers carry GSS flow controllers."""
        design = self.config.design
        if not design.uses_gss_router:
            return set()
        order = gss_router_order_for(self)
        if self.config.num_gss_routers is None:
            return set(order)
        return set(order[: self.config.num_gss_routers])

    def _controller_for(self, node: int, port: Port) -> FlowController:
        factory = design_controller_factory(
            self.config.design,
            self.timing,
            gss_nodes=self.gss_nodes,
            pct=self.config.pct,
            sti=self.config.sti,
            priority_enabled=self.config.priority_enabled,
            tracer=self.tracer,
        )
        return factory(node, port)

    #: Workload rate scaling per DDR generation (gap multiplier).  The
    #: paper pairs each generation with a matching video resolution
    #: (Section V: e.g. dual DTV does 1280x720 on DDR I, 1920x1088 on
    #: DDR II, 2560x1600 on DDR III), so the offered load in beats/cycle
    #: shrinks as the clock rises — resolution grows sub-proportionally
    #: to frequency.
    RATE_SCALE = {
        DdrGeneration.DDR1: 0.95,
        DdrGeneration.DDR2: 1.0,
        DdrGeneration.DDR3: 1.4,
    }

    def _build_cores(self) -> None:
        splitter = (
            SagmSplitter(self.config.ddr, tracer=self.tracer)
            if self.config.design.uses_sagm
            else None
        )
        rate_scale = self.RATE_SCALE[self.config.ddr]
        address_map = _address_map_for(self.timing)
        for index, spec in enumerate(self.app.cores):
            # App models are built fresh per system, so scaling in place is
            # safe and keeps the stream state objects intact.
            spec = replace(spec, gap_mean=spec.gap_mean * rate_scale)
            node = self.placement.node_of_core(index)
            core = SyntheticCore(
                master=index,
                spec=spec,
                address_map=address_map,
                region_index=index,
                region_count=len(self.app.cores),
                request_ids=self._request_ids,
                seed=self.config.seed,
                priority_demand=self.config.priority_enabled,
            )
            self.cores.append(core)
            self.core_interfaces.append(
                CoreInterface(
                    node=node,
                    memory_node=self.placement.memory_node,
                    generator=core,
                    injection_buffer=self.network.injection_buffer(node),
                    sink=self.network.local_sink(node),
                    stats=self.stats,
                    packet_ids=self._packet_ids,
                    request_ids=self._request_ids,
                    splitter=splitter,
                    tracer=self.tracer,
                    resilience=self.resilience,
                )
            )

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #

    def run(
        self,
        cycles: Optional[int] = None,
        checkpoint_every: Optional[int] = None,
        on_checkpoint=None,
    ) -> RunMetrics:
        """Simulate ``cycles`` (default: the configured run length).

        ``checkpoint_every``/``on_checkpoint`` pass straight through to
        :meth:`~repro.sim.engine.Simulator.run`: the run is segmented at
        snapshot boundaries (dispatch and fast-forward semantics
        unchanged) and ``on_checkpoint(cycle)`` — typically a
        :func:`~repro.sim.checkpoint.save_checkpoint` call — fires at
        each boundary, ending the run early if it returns true.
        """
        total = cycles if cycles is not None else self.config.cycles
        self.simulator.run(
            total,
            checkpoint_every=checkpoint_every,
            on_checkpoint=on_checkpoint,
        )
        return RunMetrics.from_collector(
            self.stats, self.simulator.cycle, scheduler=self.subsystem
        )

    def drain(self, max_cycles: int = 50_000) -> bool:
        """Stop traffic generation and fault injection, then run until
        every outstanding request resolves (completed or failed) and the
        fabric and memory subsystem empty out.  Returns ``True`` if the
        system reached quiescence within ``max_cycles`` — a run with
        resilience enabled must, or requests have hung.
        """
        for interface in self.core_interfaces:
            interface.draining = True
        if self.fault_injector is not None:
            self.fault_injector.enabled = False

        def quiesced() -> bool:
            return (
                all(
                    not interface._reassembly and not interface._pending
                    for interface in self.core_interfaces
                )
                and self.network.in_flight_packets == 0
                and self.memory_interface.idle
                and (self.resilience is None or not self.resilience.busy)
            )

        self.simulator.run(max_cycles, until=quiesced)
        return quiesced()

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #

    def attach_sampler(
        self,
        interval: int,
        capacity: int = 512,
        on_sample=None,
        clock=None,
    ):
        """Attach a live time-series sampler (see
        :mod:`repro.obs.timeseries`): every ``interval`` cycles the
        system's counters are snapshotted into ring-buffered windows and
        handed to ``on_sample`` (a telemetry stream writer, usually).

        The sampler registers *last* on the simulator so each sample
        observes end-of-cycle state, and it speaks the event-dispatch
        contract, so an all-event system stays on the event tier.  It
        only reads counters: enabling it at any interval leaves every
        simulated metric bit-identical.  Lazily imported — a system that
        never attaches one carries no sampling code at all.
        """
        if self.sampler is not None:
            raise RuntimeError("a sampler is already attached")
        from ..obs.timeseries import SystemSampleSource, TimeSeriesSampler

        self.sampler = TimeSeriesSampler(
            SystemSampleSource(self),
            interval,
            capacity=capacity,
            on_sample=on_sample,
            clock=clock,
        )
        self.simulator.add(self.sampler)
        return self.sampler

    def collect_metrics(self):
        """Snapshot the whole system's counters into one registry.

        Absorbs the ad-hoc counters scattered across the stack — NoC link
        flit/packet counts, input-buffer high-water marks, per-bank row
        hit/miss tallies, NI admission counts, MemMax thread wins — into a
        :class:`~repro.obs.metrics.MetricsRegistry` under dotted names
        (``noc.*``, ``dram.*``, ``ni.*``).
        """
        from ..noc.telemetry import register_metrics
        from ..obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        cycles = max(1, self.simulator.cycle)
        register_metrics(self.network, registry, cycles)
        for bank, (hits, misses) in sorted(self.stats.per_bank_rows.items()):
            registry.counter(f"dram.bank{bank}.row_hits").inc(hits)
            registry.counter(f"dram.bank{bank}.row_misses").inc(misses)
        registry.counter("dram.commands").inc(self.device.issued_commands)
        engine = getattr(self.subsystem, "engine", None)
        if engine is not None:
            registry.counter("dram.demand_precharges").inc(
                engine.demand_precharges
            )
        scheduler = getattr(self.subsystem, "scheduler", None)
        if scheduler is not None:
            for index, wins in enumerate(scheduler.thread_wins):
                registry.counter(f"dram.memmax.thread{index}.wins").inc(wins)
        # The Scheduler-protocol stats surface: every backend exports a
        # flat dict (service-latency series, analytic bound when present,
        # backend-specific counters) under one dotted prefix.
        for key, value in sorted(self.subsystem.scheduler_stats().items()):
            registry.gauge(f"dram.scheduler.{key}").set(value)
        for interface in self.core_interfaces:
            master = interface.generator.master
            registry.counter(f"ni.core{master}.injected").inc(
                interface.injected_packets
            )
            registry.counter(f"ni.core{master}.completed").inc(
                interface.completed_requests
            )
        registry.counter("ni.memory.admitted").inc(
            self.memory_interface.admitted
        )
        registry.counter("ni.memory.responses").inc(
            self.memory_interface.responses_sent
        )
        if self.resilience is not None:
            self.resilience.metrics_into(registry)
            registry.counter("resilience.failed_core_requests").inc(
                sum(i.failed_requests for i in self.core_interfaces)
            )
        if self.invariant_checker is not None:
            registry.counter("resilience.invariant_checks").inc(
                self.invariant_checker.checks_run
            )
        return registry


def _address_map_for(timing: DramTiming):
    from ..dram.address_map import AddressMap

    return AddressMap(banks=timing.banks)


def gss_router_order_for(system: SocSystem) -> List[int]:
    return gss_router_order(system.placement)


def build_system(
    config: SystemConfig, tracer=None, keep_samples: bool = False
) -> SocSystem:
    """Public entry point: build a runnable system for ``config``."""
    return SocSystem(config, tracer=tracer, keep_samples=keep_samples)


def run_config(config: SystemConfig) -> RunMetrics:
    """Build and run ``config``; return its headline metrics."""
    return build_system(config).run()
