"""Wall-clock profiling of the simulation kernel itself.

The ROADMAP's "as fast as the hardware allows" goal needs attribution
before optimization: which component *class* burns the Python time, and
does its share drift as buffers fill?  :class:`SimulatorProfiler` plugs
into :meth:`repro.sim.engine.Simulator.attach_profiler` and times every
``tick`` call, aggregating per component class and per N-cycle window —
behavioral tracing tells you where packets wait, this tells you where the
*simulator* waits.

The profiled path replaces the engine's plain dispatch loop, so the
unprofiled hot loop stays untouched (zero overhead when detached).
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, List, Sequence, Tuple

#: Label used for the simulator's end-of-cycle hook callbacks.
HOOKS_LABEL = "on_cycle hooks"


class SimulatorProfiler:
    """Per-component-class wall-time accounting, in N-cycle windows."""

    def __init__(self, window_cycles: int = 1_000) -> None:
        if window_cycles <= 0:
            raise ValueError("window_cycles must be positive")
        self.window_cycles = window_cycles
        self.totals: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        #: Closed windows: (first_cycle, {label: seconds}).
        self.windows: List[Tuple[int, Dict[str, float]]] = []
        self._window_start: int = 0
        self._window_totals: Dict[str, float] = {}
        self.cycles_profiled = 0

    # ------------------------------------------------------------------ #
    # Engine-facing: called instead of the plain dispatch loop
    # ------------------------------------------------------------------ #

    def step(
        self,
        components: Sequence,
        hooks: Sequence[Callable[[int], None]],
        cycle: int,
    ) -> None:
        """Tick every component and hook for ``cycle``, timing each call."""
        window = self._window_totals
        totals = self.totals
        calls = self.calls
        for component in components:
            label = type(component).__name__
            start = perf_counter()
            component.tick(cycle)
            elapsed = perf_counter() - start
            totals[label] = totals.get(label, 0.0) + elapsed
            calls[label] = calls.get(label, 0) + 1
            window[label] = window.get(label, 0.0) + elapsed
        if hooks:
            start = perf_counter()
            for hook in hooks:
                hook(cycle)
            elapsed = perf_counter() - start
            totals[HOOKS_LABEL] = totals.get(HOOKS_LABEL, 0.0) + elapsed
            calls[HOOKS_LABEL] = calls.get(HOOKS_LABEL, 0) + 1
            window[HOOKS_LABEL] = window.get(HOOKS_LABEL, 0.0) + elapsed
        self.cycles_profiled += 1
        if self.cycles_profiled % self.window_cycles == 0:
            self._roll_window(cycle + 1)

    def timed_tick(
        self, label: str, tick: Callable[[int], None], cycle: int
    ) -> None:
        """Run and time one ``tick`` under event dispatch.

        Event dispatch only runs the components actually due a cycle, so
        attribution covers exactly the work performed: skipped components
        contribute no calls (their absence *is* the speedup).  The engine
        closes each processed cycle with :meth:`end_cycle`."""
        start = perf_counter()
        tick(cycle)
        elapsed = perf_counter() - start
        self.totals[label] = self.totals.get(label, 0.0) + elapsed
        self.calls[label] = self.calls.get(label, 0) + 1
        window = self._window_totals
        window[label] = window.get(label, 0.0) + elapsed

    def end_cycle(self, cycle: int) -> None:
        """Close one *processed* cycle of event dispatch (jumped cycles do
        not count: no work ran in them)."""
        self.cycles_profiled += 1
        if self.cycles_profiled % self.window_cycles == 0:
            self._roll_window(cycle + 1)

    def _roll_window(self, next_start: int) -> None:
        if self._window_totals:
            self.windows.append((self._window_start, self._window_totals))
        self._window_start = next_start
        self._window_totals = {}

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    @property
    def total_seconds(self) -> float:
        return sum(self.totals.values())

    def shares(self) -> Dict[str, float]:
        """Fraction of measured wall time per component class."""
        total = self.total_seconds
        if total <= 0:
            return {label: 0.0 for label in self.totals}
        return {label: value / total for label, value in self.totals.items()}

    def report(self, windows: int = 3) -> str:
        """Share table plus the ``windows`` most recent per-window rows."""
        total = self.total_seconds
        lines = [
            f"simulator profile: {self.cycles_profiled} cycles, "
            f"{total:.3f}s measured"
            + (
                f" ({self.cycles_profiled / total:,.0f} cycles/s)"
                if total > 0 else ""
            ),
            f"{'component class':<24s} {'share':>7s} {'seconds':>9s} "
            f"{'calls':>9s} {'us/call':>8s}",
        ]
        shares = self.shares()
        for label in sorted(self.totals, key=self.totals.get, reverse=True):
            seconds = self.totals[label]
            calls = self.calls[label]
            per_call = seconds / calls * 1e6 if calls else 0.0
            lines.append(
                f"{label:<24s} {shares[label]:>6.1%} {seconds:>9.3f} "
                f"{calls:>9d} {per_call:>8.1f}"
            )
        recent = self.windows[-windows:]
        if recent:
            lines.append("")
            lines.append(
                f"per-{self.window_cycles}-cycle windows "
                "(seconds by component class):"
            )
            for start, window_totals in recent:
                busiest = sorted(
                    window_totals.items(), key=lambda kv: kv[1], reverse=True
                )[:3]
                row = ", ".join(f"{k}={v * 1e3:.1f}ms" for k, v in busiest)
                lines.append(f"  cycle {start:>8d}+: {row}")
        return "\n".join(lines)
