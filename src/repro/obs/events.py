"""Typed packet-lifecycle events.

Every memory request leaves a paper-shaped trail through the stack — it is
split at the core's NI (SAGM), injected into the mesh, hops router by
router toward the memory corner, wins (or loses) arbitrations, turns into
ACT/PRE/CAS commands, occupies the SDRAM data bus, and finally completes
back at the master.  The tracer records that trail as a flat stream of
:class:`TraceEvent` records keyed by packet id and request id, one
:class:`EventType` per lifecycle stage:

=============  ====================================================== =====
type           emitted by                                             keyed
=============  ====================================================== =====
``INJECT``     NI pushing a packet into a router's LOCAL buffer       pkt+req
``SAGM_SPLIT`` :class:`~repro.core.sagm.SagmSplitter`                 req
``HOP``        a router forwarding a packet's last flit               pkt+req
``ARB_GRANT``  a GSS/[4] flow controller or MemMax thread arbiter     pkt/req
``DRAM_CMD``   the command engine issuing ACT / PRE / RD / WR         req
``DATA_BEAT``  the SDRAM device scheduling a burst's data interval    req
``COMPLETE``   the master NI reassembling the last response part      req
=============  ====================================================== =====

The resilience subsystem (:mod:`repro.resilience`) adds four more types
outside the happy-path lifecycle: ``FAULT`` (an injected fault), ``RETRY``
(a CRC NACK retransmission, DRAM re-read, or watchdog re-issue),
``CORRECTED`` (the SEC-DED ECC model fixed a single-bit error), and
``FAILED`` (a request surfaced as failed after its retry caps).
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Optional


class EventType(enum.Enum):
    """The packet-lifecycle vocabulary (see module docstring)."""

    INJECT = "INJECT"
    SAGM_SPLIT = "SAGM_SPLIT"
    HOP = "HOP"
    ARB_GRANT = "ARB_GRANT"
    DRAM_CMD = "DRAM_CMD"
    DATA_BEAT = "DATA_BEAT"
    COMPLETE = "COMPLETE"
    # Resilience events (fault injection / recovery; see repro.resilience).
    FAULT = "FAULT"
    RETRY = "RETRY"
    CORRECTED = "CORRECTED"
    FAILED = "FAILED"


#: The happy-path lifecycle event types, in pipeline order.  A fault-free
#: traced run emits exactly these.
LIFECYCLE_EVENT_TYPES = (
    EventType.INJECT,
    EventType.SAGM_SPLIT,
    EventType.HOP,
    EventType.ARB_GRANT,
    EventType.DRAM_CMD,
    EventType.DATA_BEAT,
    EventType.COMPLETE,
)

#: The fault/recovery event types emitted only by the resilience stack.
RESILIENCE_EVENT_TYPES = (
    EventType.FAULT,
    EventType.RETRY,
    EventType.CORRECTED,
    EventType.FAILED,
)


class TraceEvent:
    """One lifecycle event.

    ``component`` names the emitting hardware unit (``core3``, ``router5``,
    ``bank2``, ``memmax.t1``); exporters group events into one track per
    component.  ``args`` carries event-specific detail (port, command kind,
    burst interval, ...).
    """

    __slots__ = ("type", "cycle", "component", "packet_id", "request_id", "args")

    def __init__(
        self,
        type: EventType,
        cycle: int,
        component: str,
        packet_id: Optional[int] = None,
        request_id: Optional[int] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.type = type
        self.cycle = cycle
        self.component = component
        self.packet_id = packet_id
        self.request_id = request_id
        self.args = args or {}

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-serializable form (JSONL export)."""
        record: Dict[str, Any] = {
            "type": self.type.value,
            "cycle": self.cycle,
            "component": self.component,
        }
        if self.packet_id is not None:
            record["packet_id"] = self.packet_id
        if self.request_id is not None:
            record["request_id"] = self.request_id
        if self.args:
            record["args"] = self.args
        return record

    def __repr__(self) -> str:
        ids = []
        if self.packet_id is not None:
            ids.append(f"pkt={self.packet_id}")
        if self.request_id is not None:
            ids.append(f"req={self.request_id}")
        tail = f" {' '.join(ids)}" if ids else ""
        return (
            f"TraceEvent({self.type.value} @{self.cycle} "
            f"{self.component}{tail})"
        )
