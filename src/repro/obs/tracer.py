"""Event tracers: the zero-overhead null default and the in-memory recorder.

Every instrumented component holds a ``tracer`` attribute and guards each
emission with a plain truthiness test::

    tracer = self.tracer
    if tracer:
        tracer.emit(EventType.HOP, cycle, self._label, packet_id=...)

:class:`NullTracer` is *falsy* (as is ``None``), so the untraced hot path
pays exactly one truth test per site — no call, no string formatting, no
event construction.  :class:`MemoryTracer` is truthy and records
:class:`~repro.obs.events.TraceEvent` objects for the exporters.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from .events import EventType, TraceEvent


class Tracer:
    """Tracer interface (see module docstring for the emission contract)."""

    #: Falsy tracers are skipped at every instrumentation site.
    enabled = True

    def __bool__(self) -> bool:
        # Explicit so subclasses defining __len__ (like MemoryTracer when
        # empty) stay truthy: "is there a tracer" must not depend on
        # whether it has recorded anything yet.
        return True

    def emit(
        self,
        type: EventType,
        cycle: int,
        component: str,
        packet_id: Optional[int] = None,
        request_id: Optional[int] = None,
        **args: Any,
    ) -> None:
        raise NotImplementedError


class NullTracer(Tracer):
    """Discards everything; falsy so emission sites skip it entirely."""

    enabled = False

    def __bool__(self) -> bool:
        return False

    def emit(self, *event_args: Any, **event_kwargs: Any) -> None:
        return None


#: Shared default instance — NullTracer is stateless.
NULL_TRACER = NullTracer()


class MemoryTracer(Tracer):
    """Records events in memory, optionally bounded.

    ``limit`` caps the number of stored events (oldest kept); overflow is
    counted in :attr:`dropped` instead of silently discarded, so a
    truncated trace is detectable.
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        if limit is not None and limit <= 0:
            raise ValueError("limit must be positive")
        self.limit = limit
        self.events: List[TraceEvent] = []
        self.dropped = 0

    def emit(
        self,
        type: EventType,
        cycle: int,
        component: str,
        packet_id: Optional[int] = None,
        request_id: Optional[int] = None,
        **args: Any,
    ) -> None:
        if self.limit is not None and len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(
            TraceEvent(type, cycle, component, packet_id, request_id,
                       args or None)
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def of_type(self, type: EventType) -> List[TraceEvent]:
        return [event for event in self.events if event.type is type]

    def by_request(self, request_id: int) -> List[TraceEvent]:
        return [e for e in self.events if e.request_id == request_id]

    def counts(self) -> Dict[str, int]:
        """Event count per type name (diagnostic summary)."""
        totals: Dict[str, int] = {}
        for event in self.events:
            name = event.type.value
            totals[name] = totals.get(name, 0) + 1
        return totals
