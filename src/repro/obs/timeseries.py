"""Time-resolved metrics: interval sampling into ring-buffered series.

Everything else in :mod:`repro.obs` is post-mortem — the registry,
tracer, and profiler report once, at end of run.  This module makes the
same counters *time-resolved*: a :class:`TimeSeriesSampler` snapshots a
:class:`SampleSource` every ``interval`` cycles and turns cumulative
counters into per-window deltas and rates (and latency series into
per-window p50/p95/p99), keeping the most recent windows in a fixed-size
ring buffer and handing each :class:`Sample` to an optional ``on_sample``
callback (the telemetry stream writer, usually).

The sampler is an ordinary simulator component speaking the *event*
dispatch contract (see :mod:`repro.sim.engine`):

* it arms the calendar wake-queue for each window boundary via
  ``event_wake_at``, so an all-event system **stays on the event tier**
  (``last_dispatch_mode == "event"``) — sampling never drops a run to
  per-cycle stepping;
* under the stepped tier it exposes ``is_idle``/``wake_at``, so global
  fast-forward still engages — a jump simply lands on the next window
  boundary;
* gaps that overshoot boundaries anyway (run-exit flushes, ``until``
  predicates, bulk skip accounting) are reported through
  ``on_cycles_skipped`` and emit one **coalesced** sample covering every
  window in the gap (``windows > 1``) instead of replaying them;
* it only *reads* counters, so enabling it at any interval leaves every
  simulated metric bit-identical — and when it is not attached, no
  sampling code exists on any hot path at all.

Wall-clock timestamps ride along on every sample (for cycles/sec in the
monitor) but are never part of simulated state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence


@dataclass(frozen=True)
class Sample:
    """One observation window's worth of metrics.

    ``cycle`` is the last simulated cycle the window covers; the window
    spans the half-open range ``(cycle - span, cycle]``.  ``windows`` is
    the number of nominal sampling intervals folded into this sample
    (``> 1`` means the simulator jumped a gap and the sample is
    coalesced); ``partial`` marks an end-of-run flush shorter than one
    full interval.
    """

    cycle: int
    span: int
    windows: int
    partial: bool
    #: Cumulative counter values at the window's end.
    totals: Dict[str, float]
    #: Counter increments over the window (``totals - previous totals``).
    deltas: Dict[str, float]
    #: Per-cycle rates (``deltas / span``).
    rates: Dict[str, float]
    #: Instantaneous gauge readings at the window's end.
    gauges: Dict[str, float]
    #: Per-latency-class window summaries: count/mean always, p50/p95/p99
    #: when the source keeps raw samples.
    latency: Dict[str, Dict[str, float]]
    #: Wall-clock seconds (``time.perf_counter`` domain) at emission —
    #: observability only, never simulated state.
    wall_s: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (sorted keys for diffable streams)."""
        return {
            "cycle": self.cycle,
            "span": self.span,
            "windows": self.windows,
            "partial": self.partial,
            "totals": {k: self.totals[k] for k in sorted(self.totals)},
            "deltas": {k: self.deltas[k] for k in sorted(self.deltas)},
            "rates": {k: round(self.rates[k], 9) for k in sorted(self.rates)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "latency": {
                k: {f: self.latency[k][f] for f in sorted(self.latency[k])}
                for k in sorted(self.latency)
            },
            "wall_s": self.wall_s,
        }


class RingBuffer:
    """Fixed-capacity ring of the most recent samples (oldest evicted)."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._items: List[Sample] = []
        self._start = 0
        #: Total samples ever appended (evicted ones included).
        self.appended = 0

    def append(self, item: Sample) -> None:
        if len(self._items) < self.capacity:
            self._items.append(item)
        else:
            self._items[self._start] = item
            self._start = (self._start + 1) % self.capacity
        self.appended += 1

    @property
    def evicted(self) -> int:
        return self.appended - len(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        n = len(self._items)
        for offset in range(n):
            yield self._items[(self._start + offset) % n]

    def last(self) -> Optional[Sample]:
        if not self._items:
            return None
        return self._items[(self._start - 1) % len(self._items)]

    def series(self, key: str, kind: str = "rates") -> List[float]:
        """One metric's values across the buffered windows, oldest first."""
        return [getattr(sample, kind).get(key, 0.0) for sample in self]


def window_percentiles(values: Sequence[float]) -> Dict[str, float]:
    """p50/p95/p99 of one window's latency samples (nearest-rank)."""
    ordered = sorted(values)
    n = len(ordered)
    out: Dict[str, float] = {}
    for name, q in (("p50", 50.0), ("p95", 95.0), ("p99", 99.0)):
        index = min(n - 1, round(q / 100 * (n - 1)))
        out[name] = float(ordered[index])
    return out


class SampleSource:
    """What the sampler reads every window.  Subclass or duck-type:

    * :meth:`counters` — cumulative, monotone scalars (diffed to rates);
    * :meth:`gauges` — instantaneous scalars (reported as-is);
    * :meth:`latency_series` — per-class objects exposing ``count``,
      ``total``, and (optionally populated) ``samples``.
    """

    def counters(self) -> Dict[str, float]:
        return {}

    def gauges(self) -> Dict[str, float]:
        return {}

    def latency_series(self) -> Mapping[str, object]:
        return {}


class SystemSampleSource(SampleSource):
    """The :class:`~repro.core.system.SocSystem` adapter.

    Reads only counters the system already maintains — no registry is
    built, no component is perturbed — so a sample costs a handful of
    attribute reads and one small dict.
    """

    def __init__(self, system) -> None:
        self.system = system

    def counters(self) -> Dict[str, float]:
        system = self.system
        stats = system.stats
        out = {
            "requests.completed": float(stats.all_packets.count),
            "requests.demand_completed": float(stats.demand_packets.count),
            "dram.busy_cycles": float(stats.busy_cycles),
            "dram.useful_beats": float(stats.useful_beats),
            "dram.wasted_beats": float(stats.wasted_beats),
            "dram.row_hits": float(stats.row_hits),
            "dram.row_misses": float(stats.row_misses),
            "dram.commands": float(system.device.issued_commands),
            "ni.injected": float(
                sum(i.injected_packets for i in system.core_interfaces)
            ),
            "ni.memory.admitted": float(system.memory_interface.admitted),
            "ni.memory.responses": float(system.memory_interface.responses_sent),
        }
        resilience = system.resilience
        if resilience is not None:
            out["resilience.injected"] = float(resilience.injected_total)
            out["resilience.recovered"] = float(resilience.recovered)
            out["resilience.failed_requests"] = float(
                resilience.failed_requests
            )
        return out

    def gauges(self) -> Dict[str, float]:
        system = self.system
        return {
            "noc.in_flight_packets": float(system.network.in_flight_packets),
            "sim.fast_forwarded_cycles": float(
                system.simulator.fast_forwarded_cycles
            ),
        }

    def latency_series(self) -> Mapping[str, object]:
        stats = self.system.stats
        return {"all": stats.all_packets, "demand": stats.demand_packets}


class TimeSeriesSampler:
    """Interval sampler as a first-class wake-queue client.

    Register with ``simulator.add(sampler)`` *after* the system's other
    components so each sample observes end-of-cycle state.  The engine
    also treats it as a run listener (``on_run_start``/``on_run_end``),
    which is how partial trailing windows get flushed at every
    :meth:`~repro.sim.engine.Simulator.run` exit.
    """

    def __init__(
        self,
        source: SampleSource,
        interval: int,
        capacity: int = 512,
        on_sample: Optional[Callable[[Sample], None]] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.source = source
        self.interval = interval
        self.samples = RingBuffer(capacity)
        self.on_sample = on_sample
        self._clock = clock if clock is not None else time.perf_counter
        #: Next window-boundary cycle (the cycle whose tick emits).
        self._next = interval - 1
        #: Last cycle already covered by an emitted sample.
        self._covered = -1
        self._baseline: Optional[Dict[str, float]] = None
        self._latency_counts: Dict[str, int] = {}
        self._latency_totals: Dict[str, float] = {}
        self._latency_seen: Dict[str, int] = {}
        #: Total samples emitted (coalesced gaps count once).
        self.emitted = 0

    def __getstate__(self):
        """Emission plumbing is process-local and never serialized: the
        ``on_sample`` callback usually holds an open telemetry stream and
        ``_clock`` may be any local callable.  Counter state (windows,
        baselines, ring buffer) round-trips, so a restored run samples on
        the same boundaries — re-attach a writer before resuming if live
        emission should continue."""
        state = self.__dict__.copy()
        state["on_sample"] = None
        state["_clock"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._clock = time.perf_counter

    # ------------------------------------------------------------------ #
    # Simulator contracts (event + stepped tiers)
    # ------------------------------------------------------------------ #

    def tick(self, cycle: int) -> None:
        if cycle >= self._next:
            self._catch_up(cycle)

    def event_wake_at(self, cycle: int) -> Optional[int]:
        return self._next if self._next > cycle else cycle + 1

    def is_idle(self, cycle: int) -> bool:
        return cycle < self._next

    def wake_at(self) -> Optional[int]:
        return self._next

    def on_cycles_skipped(self, start: int, stop: int) -> None:
        """Account a never-ticked gap ``[start, stop)``: any window
        boundaries inside it collapse into one coalesced sample."""
        if stop - 1 >= self._next:
            self._catch_up(stop - 1)

    def on_run_start(self, cycle: int) -> None:
        # Capture the counter baseline lazily so attach order (and any
        # pre-run warm state) is irrelevant.
        if self._baseline is None:
            self._ensure_baseline()

    def on_run_end(self, cycle: int) -> None:
        """Flush the trailing partial window at every run exit."""
        self.flush(cycle)

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    def _ensure_baseline(self) -> None:
        self._baseline = dict(self.source.counters())
        for name, series in self.source.latency_series().items():
            self._latency_counts[name] = series.count
            self._latency_totals[name] = float(series.total)
            self._latency_seen[name] = len(getattr(series, "samples", ()))

    def _catch_up(self, now: int) -> None:
        """Emit every sample due at or before ``now`` as one record.

        ``now >= self._next`` must hold.  When more than one boundary
        passed (a jumped gap), the boundaries coalesce into a single
        sample whose ``windows`` counts them.
        """
        windows = (now - self._next) // self.interval + 1
        boundary = self._next + (windows - 1) * self.interval
        self._emit(boundary, windows, partial=False)
        self._next = boundary + self.interval

    def flush(self, cycle: int) -> Optional[Sample]:
        """Emit a final sub-interval sample covering ``(_covered, cycle-1]``
        if any cycles elapsed since the last emission; no-op otherwise."""
        end = cycle - 1
        if end <= self._covered:
            return None
        if end >= self._next:
            self._catch_up(end)
        if end > self._covered:
            return self._emit(end, windows=0, partial=True)
        return self.samples.last()

    def _emit(self, end: int, windows: int, partial: bool) -> Sample:
        if self._baseline is None:
            self._ensure_baseline()
        span = end - self._covered
        counters = self.source.counters()
        baseline = self._baseline
        deltas = {
            name: value - baseline.get(name, 0.0)
            for name, value in counters.items()
        }
        rates = {name: delta / span for name, delta in deltas.items()}
        latency: Dict[str, Dict[str, float]] = {}
        for name, series in self.source.latency_series().items():
            count = series.count - self._latency_counts.get(name, 0)
            total = float(series.total) - self._latency_totals.get(name, 0.0)
            summary: Dict[str, float] = {
                "count": float(count),
                "mean": total / count if count else 0.0,
            }
            raw = getattr(series, "samples", None)
            seen = self._latency_seen.get(name, 0)
            if raw is not None and len(raw) > seen:
                summary.update(window_percentiles(raw[seen:]))
            latency[name] = summary
            self._latency_counts[name] = series.count
            self._latency_totals[name] = float(series.total)
            self._latency_seen[name] = len(raw) if raw is not None else 0
        sample = Sample(
            cycle=end,
            span=span,
            windows=windows,
            partial=partial,
            totals=counters,
            deltas=deltas,
            rates=rates,
            gauges=dict(self.source.gauges()),
            latency=latency,
            wall_s=self._clock(),
        )
        self._baseline = counters
        self._covered = end
        self.samples.append(sample)
        self.emitted += 1
        if self.on_sample is not None:
            self.on_sample(sample)
        return sample
