"""Metrics registry: counters, gauges, and histograms in one namespace.

The simulator accumulates ad-hoc counters all over the stack — per-link
flit counts on router outputs, buffer high-water marks, per-bank row
hit/miss tallies, MemMax thread wins.  The registry absorbs them behind
one queryable, dotted namespace (``noc.link.5.EAST.flits``,
``dram.bank3.row_hits``) so reports, exporters, and tests read a single
source instead of spelunking component attributes.

Metrics are created lazily and get-or-create by name;  requesting an
existing name with a different metric kind is an error (one name, one
meaning).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class Gauge:
    """Last-value metric with a convenience maximum tracker."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def track_max(self, value: float) -> None:
        """Keep the high-water mark of ``value`` (e.g. buffer occupancy)."""
        if value > self.value:
            self.value = value


class Histogram:
    """Sample distribution: streaming count/total/min/max plus raw samples."""

    __slots__ = ("name", "count", "total", "minimum", "maximum", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.samples: List[float] = []

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        self.samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        if not 0 <= q <= 100:
            raise ValueError("percentile must be within [0, 100]")
        if not self.samples:
            raise ValueError(f"histogram {self.name!r} has no samples")
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, round(q / 100 * (len(ordered) - 1)))
        return float(ordered[index])


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """One queryable namespace of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, name: str, kind) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = kind(name)
        elif not isinstance(metric, kind):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self, prefix: str = "") -> List[str]:
        """Registered metric names (optionally under a dotted prefix)."""
        return sorted(
            name for name in self._metrics
            if not prefix or name == prefix or name.startswith(prefix + ".")
        )

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def as_dict(self) -> Dict[str, Union[float, Dict[str, float]]]:
        """Flat snapshot: scalars for counters/gauges, summaries for
        histograms — the JSON-export form."""
        return self.snapshot()

    def snapshot(self) -> Dict[str, Union[float, Dict[str, float]]]:
        """Deterministic flat snapshot of the whole namespace.

        Key order is guaranteed: metric names sorted lexicographically,
        histogram summary fields in a fixed order — so ``json.dumps``
        of two snapshots of identical state is byte-identical no matter
        what order the metrics were registered or updated in.  JSONL
        telemetry, the Prometheus exposition, and the exporters all
        build on this guarantee, which is what lets stream and export
        output diff cleanly across runs.

        Histograms additionally report p50/p95/p99 when raw samples
        were kept.
        """
        snapshot: Dict[str, Union[float, Dict[str, float]]] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                summary: Dict[str, float] = {
                    "count": float(metric.count),
                    "mean": metric.mean,
                }
                if metric.count:
                    summary["min"] = float(metric.minimum)  # type: ignore[arg-type]
                    summary["max"] = float(metric.maximum)  # type: ignore[arg-type]
                if metric.samples:
                    summary["p50"] = metric.percentile(50)
                    summary["p95"] = metric.percentile(95)
                    summary["p99"] = metric.percentile(99)
                snapshot[name] = summary
            else:
                snapshot[name] = metric.value
        return snapshot

    def render(self, prefix: str = "") -> str:
        """Human-readable table of the (optionally filtered) namespace."""
        lines = [f"{'metric':<44s} {'value':>12s}"]
        for name in self.names(prefix):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                value = (
                    f"n={metric.count} mean={metric.mean:.1f}"
                    if metric.count else "n=0"
                )
                lines.append(f"{name:<44s} {value:>12s}")
            elif isinstance(metric, Gauge):
                lines.append(f"{name:<44s} {metric.value:>12.2f}")
            else:
                lines.append(f"{name:<44s} {metric.value:>12d}")
        return "\n".join(lines)
