"""Unified observability: lifecycle tracing, metrics, exporters, profiling.

One subsystem answers "where did this packet's cycles go?" at every layer:

* :mod:`repro.obs.events` / :mod:`repro.obs.tracer` — typed lifecycle
  events (``INJECT`` ... ``COMPLETE``) with a zero-overhead
  :class:`NullTracer` default and an in-memory recorder;
* :mod:`repro.obs.metrics` — a counters/gauges/histograms registry that
  absorbs the stack's ad-hoc counters behind one dotted namespace;
* :mod:`repro.obs.exporters` — Chrome trace-event JSON (Perfetto /
  chrome://tracing), JSONL dumps, per-request latency breakdowns;
* :mod:`repro.obs.profiler` — wall-time attribution per simulator
  component class, for finding the Python hot spots.

Entry points: ``build_system(config, tracer=MemoryTracer())`` then the
exporters, or the CLI's ``repro trace`` / ``repro profile``.
"""

from .events import (
    LIFECYCLE_EVENT_TYPES,
    RESILIENCE_EVENT_TYPES,
    EventType,
    TraceEvent,
)
from .exporters import (
    RequestBreakdown,
    chrome_trace,
    latency_breakdowns,
    read_jsonl,
    render_latency_report,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profiler import SimulatorProfiler
from .tracer import NULL_TRACER, MemoryTracer, NullTracer, Tracer

__all__ = [
    "Counter",
    "EventType",
    "Gauge",
    "Histogram",
    "LIFECYCLE_EVENT_TYPES",
    "MemoryTracer",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "RESILIENCE_EVENT_TYPES",
    "RequestBreakdown",
    "SimulatorProfiler",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "latency_breakdowns",
    "read_jsonl",
    "render_latency_report",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
