"""Unified observability: tracing, metrics, time series, streaming.

One subsystem answers "where did this packet's cycles go?" at every layer
— after the run *and while it is still going*:

* :mod:`repro.obs.events` / :mod:`repro.obs.tracer` — typed lifecycle
  events (``INJECT`` ... ``COMPLETE``) with a zero-overhead
  :class:`NullTracer` default and an in-memory recorder;
* :mod:`repro.obs.metrics` — a counters/gauges/histograms registry that
  absorbs the stack's ad-hoc counters behind one dotted namespace, with
  a deterministic :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`;
* :mod:`repro.obs.exporters` — Chrome trace-event JSON (Perfetto /
  chrome://tracing), JSONL dumps, per-request latency breakdowns;
* :mod:`repro.obs.profiler` — wall-time attribution per simulator
  component class, for finding the Python hot spots;
* :mod:`repro.obs.timeseries` — interval sampler riding the event-core
  wake queue: ring-buffered per-window rates and latency percentiles;
* :mod:`repro.obs.stream` — the newline-JSON telemetry stream protocol
  (run manifests, samples, sweep heartbeats) plus Prometheus exposition;
* :mod:`repro.obs.monitor` — the ``repro monitor`` live terminal view.

Entry points: ``build_system(config, tracer=MemoryTracer())`` then the
exporters; ``repro run --telemetry run.ndjson --sample-interval 1000``
plus ``repro monitor run.ndjson``; or ``repro trace`` / ``repro
profile``.
"""

from .events import (
    LIFECYCLE_EVENT_TYPES,
    RESILIENCE_EVENT_TYPES,
    EventType,
    TraceEvent,
)
from .exporters import (
    RequestBreakdown,
    chrome_trace,
    latency_breakdowns,
    read_jsonl,
    render_latency_report,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .monitor import MonitorState, run_monitor
from .profiler import SimulatorProfiler
from .stream import (
    TelemetryWriter,
    host_manifest,
    prometheus_exposition,
    read_stream,
    run_manifest,
    validate_stream,
)
from .timeseries import (
    RingBuffer,
    Sample,
    SampleSource,
    SystemSampleSource,
    TimeSeriesSampler,
)
from .tracer import NULL_TRACER, MemoryTracer, NullTracer, Tracer

__all__ = [
    "Counter",
    "EventType",
    "Gauge",
    "Histogram",
    "LIFECYCLE_EVENT_TYPES",
    "MemoryTracer",
    "MetricsRegistry",
    "MonitorState",
    "NULL_TRACER",
    "NullTracer",
    "RESILIENCE_EVENT_TYPES",
    "RequestBreakdown",
    "RingBuffer",
    "Sample",
    "SampleSource",
    "SimulatorProfiler",
    "SystemSampleSource",
    "TelemetryWriter",
    "TimeSeriesSampler",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "host_manifest",
    "latency_breakdowns",
    "prometheus_exposition",
    "read_jsonl",
    "read_stream",
    "render_latency_report",
    "run_manifest",
    "run_monitor",
    "validate_chrome_trace",
    "validate_stream",
    "write_chrome_trace",
    "write_jsonl",
]
