"""``repro monitor``: render a telemetry stream as a live terminal view.

The monitor consumes the newline-JSON protocol of
:mod:`repro.obs.stream` — from a finished file (``--once``) or by
tailing a live one (``--follow``) — and folds it into one screenful:

* **runs**: current cycle, simulated cycles/second (from successive
  samples' wall-clock stamps), in-flight packets, DRAM bus utilization
  and row-hit rate over the last window, per-class window p95 latency;
* **sweeps**: a progress bar of done/total with failures, cache hits,
  live workers (from heartbeats), throughput and ETA.

Rendering is plain text built by pure functions over a
:class:`MonitorState`, so tests (and future surfaces like
``repro serve``) drive the same code path the terminal does.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, TextIO

from .stream import iter_stream, read_stream


@dataclass
class MonitorState:
    """Everything a stream has told us so far."""

    manifest: Optional[Mapping[str, object]] = None
    last_sample: Optional[Mapping[str, object]] = None
    prev_sample: Optional[Mapping[str, object]] = None
    samples_seen: int = 0
    run_summary: Optional[Mapping[str, object]] = None
    # Sweep progress.
    sweep_total: int = 0
    sweep_done: int = 0
    sweep_failed: int = 0
    sweep_hits: int = 0
    sweep_eta_s: Optional[float] = None
    sweep_jobs_per_s: Optional[float] = None
    sweep_finished: bool = False
    #: worker id -> most recent heartbeat record.
    workers: Dict[object, Mapping[str, object]] = field(default_factory=dict)
    bench_rounds: int = 0
    records_seen: int = 0

    # ------------------------------------------------------------------ #

    def apply(self, record: Mapping[str, object]) -> None:
        """Fold one stream record into the state (unknown types are
        counted but otherwise ignored, so the monitor never crashes on a
        newer producer)."""
        self.records_seen += 1
        rtype = record.get("type")
        if rtype == "run_start":
            self.manifest = record
            self.run_summary = None
        elif rtype == "sample":
            self.prev_sample = self.last_sample
            self.last_sample = record
            self.samples_seen += 1
        elif rtype == "run_end":
            self.run_summary = record
        elif rtype == "sweep_start":
            self.sweep_total = int(record.get("total", 0))
            self.sweep_done = self.sweep_failed = self.sweep_hits = 0
            self.sweep_finished = False
        elif rtype in ("job_done", "job_fail", "job_hit"):
            self.sweep_done += 1
            if rtype == "job_fail":
                self.sweep_failed += 1
            elif rtype == "job_hit":
                self.sweep_hits += 1
        elif rtype == "sweep_progress":
            self.sweep_done = int(record.get("done", self.sweep_done))
            self.sweep_failed = int(record.get("failed", self.sweep_failed))
            self.sweep_hits = int(record.get("hits", self.sweep_hits))
            eta = record.get("eta_s")
            self.sweep_eta_s = float(eta) if eta is not None else None
            rate = record.get("jobs_per_s")
            self.sweep_jobs_per_s = float(rate) if rate is not None else None
        elif rtype == "heartbeat":
            self.workers[record.get("worker")] = record
        elif rtype == "sweep_end":
            self.sweep_finished = True
        elif rtype == "bench_round":
            self.bench_rounds += 1

    @property
    def finished(self) -> bool:
        """True once the stream told us its producer is done."""
        if self.sweep_total:
            return self.sweep_finished
        return self.run_summary is not None

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #

    def cycles_per_second(self) -> Optional[float]:
        """Simulated cycles/sec between the two most recent samples."""
        if self.last_sample is None or self.prev_sample is None:
            return None
        dt = float(self.last_sample.get("wall_s", 0.0)) - float(
            self.prev_sample.get("wall_s", 0.0)
        )
        dc = int(self.last_sample.get("cycle", 0)) - int(
            self.prev_sample.get("cycle", 0)
        )
        if dt <= 0 or dc <= 0:
            return None
        return dc / dt


def _bar(done: int, total: int, width: int = 24) -> str:
    filled = int(width * done / total) if total else 0
    return "[" + "#" * filled + "." * (width - filled) + "]"


def _fmt_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "?"
    seconds = max(0.0, seconds)
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


def render(state: MonitorState) -> str:
    """The whole monitor view as plain text (one trailing newline)."""
    lines: List[str] = []
    manifest = state.manifest
    if manifest is not None:
        key = str(manifest.get("config_key", ""))[:12]
        lines.append(
            f"run       : {manifest.get('label', '?')} "
            f"seed={manifest.get('seed', '?')} "
            f"interval={manifest.get('sample_interval', '?')} "
            f"[{key or 'no key'}]"
        )
    sample = state.last_sample
    if sample is not None:
        cps = state.cycles_per_second()
        cps_text = f"{cps:,.0f} c/s" if cps is not None else "c/s n/a"
        span = max(1, int(sample.get("span", 1)))
        rates = sample.get("rates", {})
        gauges = sample.get("gauges", {})
        busy = float(rates.get("dram.busy_cycles", 0.0))
        hits = float(rates.get("dram.row_hits", 0.0))
        misses = float(rates.get("dram.row_misses", 0.0))
        hit_rate = hits / (hits + misses) if hits + misses else 0.0
        lines.append(
            f"cycle     : {int(sample.get('cycle', 0)):,} "
            f"(window {span:,}c, {state.samples_seen} samples)  {cps_text}"
        )
        lines.append(
            f"dram      : bus {busy * 100:5.1f}%  row-hit {hit_rate * 100:5.1f}%  "
            f"{float(rates.get('requests.completed', 0.0)) * 1000:.1f} req/kc"
        )
        lines.append(
            f"in-flight : {float(gauges.get('noc.in_flight_packets', 0)):.0f} packets"
        )
        latency = sample.get("latency", {})
        if latency:
            parts = []
            for name in sorted(latency):
                entry = latency[name]
                if "p95" in entry:
                    parts.append(f"{name} p95={entry['p95']:.0f}c")
                elif entry.get("count"):
                    parts.append(f"{name} mean={entry['mean']:.0f}c")
            if parts:
                lines.append(f"latency   : {'  '.join(parts)} (window)")
    if state.run_summary is not None:
        summary = state.run_summary
        lines.append(
            f"run done  : util={summary.get('utilization', 0):.3f} "
            f"lat(all)={summary.get('latency_all', 0):.1f} "
            f"lat(dem)={summary.get('latency_demand', 0):.1f} "
            f"completed={summary.get('completed', 0)}"
        )
    if state.sweep_total:
        rate = (
            f"{state.sweep_jobs_per_s:.2f} job/s"
            if state.sweep_jobs_per_s is not None else "rate n/a"
        )
        lines.append(
            f"sweep     : {_bar(state.sweep_done, state.sweep_total)} "
            f"{state.sweep_done}/{state.sweep_total} done, "
            f"{state.sweep_failed} failed, {state.sweep_hits} hits, "
            f"{rate}, eta {_fmt_eta(state.sweep_eta_s)}"
        )
        if state.workers:
            beats = ", ".join(
                f"{worker}:{record.get('jobs_done', '?')}"
                for worker, record in sorted(
                    state.workers.items(), key=lambda kv: str(kv[0])
                )
            )
            lines.append(
                f"workers   : {len(state.workers)} seen ({beats})"
            )
        if state.sweep_finished:
            lines.append("sweep done")
    if state.bench_rounds:
        lines.append(f"bench     : {state.bench_rounds} timed rounds")
    if not lines:
        lines.append(f"(no renderable records in {state.records_seen} read)")
    return "\n".join(lines) + "\n"


def run_monitor(
    path: str,
    follow: bool = False,
    once: bool = False,
    refresh_s: float = 1.0,
    out: Optional[TextIO] = None,
    max_seconds: Optional[float] = None,
) -> int:
    """The ``repro monitor`` entry point.

    ``once`` parses the whole stream and prints the final view (the CI
    parse check).  ``follow`` tails the stream, redrawing every
    ``refresh_s``, until the producer signals completion (run_end /
    sweep_end), the optional ``max_seconds`` budget runs out, or the
    reader is interrupted.  The default (neither flag) renders whatever
    the stream holds right now and exits — cheap and scriptable.
    Returns 0 if any renderable record was seen, 1 otherwise.
    """
    out = out if out is not None else sys.stdout
    state = MonitorState()
    if not follow or once:
        for record in read_stream(path):
            state.apply(record)
        out.write(render(state))
        return 0 if state.records_seen else 1

    started = time.monotonic()
    deadline = started + max_seconds if max_seconds is not None else None
    last_draw = 0.0
    interactive = hasattr(out, "isatty") and out.isatty()
    drawn_lines = 0

    def redraw() -> None:
        nonlocal last_draw, drawn_lines
        text = render(state)
        if interactive and drawn_lines:
            out.write(f"\x1b[{drawn_lines}F\x1b[J")
        out.write(text)
        out.flush()
        drawn_lines = text.count("\n")
        last_draw = time.monotonic()

    def expired() -> bool:
        return (
            state.finished
            or (deadline is not None and time.monotonic() >= deadline)
        )

    try:
        for record in iter_stream(
            path, follow=True, poll_s=min(0.25, refresh_s), stop=expired
        ):
            state.apply(record)
            if time.monotonic() - last_draw >= refresh_s or state.finished:
                redraw()
            if expired():
                break
    except KeyboardInterrupt:  # pragma: no cover - interactive escape
        pass
    redraw()
    return 0 if state.records_seen else 1
