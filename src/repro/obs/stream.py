"""Telemetry stream: newline-JSON records for live runs and sweeps.

One flat protocol carries everything the live surfaces consume — the
:class:`~repro.obs.monitor` terminal view today, ``repro serve`` later.
A stream is a file (or pipe) of one JSON object per line; every record
has a ``type`` and a wall-clock ``ts``:

* ``run_start`` — manifest for one simulation: fully-resolved config
  payload and its content-addressed hash (the sweep-store key), seed,
  sampling interval, and the host manifest (python, numpy, cpu count,
  git describe);
* ``sample`` — one :class:`~repro.obs.timeseries.Sample`, as emitted by
  the interval sampler (coalesced gap samples included);
* ``run_end`` — end-of-run summary (the headline RunMetrics fields);
* ``sweep_start`` / ``job_start`` / ``job_done`` / ``job_fail`` /
  ``job_hit`` / ``heartbeat`` / ``sweep_progress`` / ``sweep_end`` —
  the sweep orchestrator's lifecycle, including per-worker heartbeats
  written *by the worker processes themselves* (single-line ``O_APPEND``
  writes, so no cross-process locking is needed);
* ``bench_round`` — one timed repetition of a standing benchmark;
* ``checkpoint`` — one snapshot written by ``repro run`` (periodic or
  signal-triggered): cycle, path, and reason.

Writers always append whole lines and flush per record, so a reader can
tail the file while the producer is live.  Readers tolerate a truncated
final line (an interrupted producer) by counting it, never by raising.

:func:`prometheus_exposition` renders any metrics registry in the
Prometheus text exposition format, for scraping a snapshot.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, TextIO, Union

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

#: Record types a well-formed stream may carry.
RECORD_TYPES = frozenset([
    "run_start", "sample", "run_end",
    "sweep_start", "job_start", "job_done", "job_fail", "job_hit",
    "heartbeat", "sweep_progress", "sweep_end",
    "bench_round",
    "checkpoint",
])


class TelemetryWriter:
    """Append newline-JSON records to a file, pipe, or text stream.

    A path is opened truncate-then-append: the parent process truncates
    once, then every write — from this process or a worker that opened
    the same path with ``mode="a"`` — is an ``O_APPEND`` line write, so
    concurrent producers interleave whole records.
    """

    def __init__(
        self,
        sink: Union[str, Path, TextIO],
        mode: str = "w",
    ) -> None:
        if mode not in ("w", "a"):
            raise ValueError(f"mode must be 'w' or 'a', got {mode!r}")
        self.path: Optional[Path] = None
        self._owned = False
        if isinstance(sink, (str, Path)):
            self.path = Path(sink)
            if self.path.parent != Path(""):
                self.path.parent.mkdir(parents=True, exist_ok=True)
            if mode == "w":
                self.path.open("w", encoding="utf-8").close()
            self._handle = self.path.open("a", encoding="utf-8")
            self._owned = True
        else:
            self._handle = sink
        self.records_written = 0

    def emit(self, type: str, **fields: object) -> Dict[str, object]:
        """Write one record; returns it (with ``type`` and ``ts`` set)."""
        if type not in RECORD_TYPES:
            raise ValueError(f"unknown telemetry record type {type!r}")
        record: Dict[str, object] = {"type": type, "ts": time.time()}
        record.update(fields)
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        self.records_written += 1
        return record

    def sample(self, sample) -> Dict[str, object]:
        """Emit one :class:`~repro.obs.timeseries.Sample`."""
        return self.emit("sample", **sample.to_dict())

    def close(self) -> None:
        if self._owned:
            self._handle.close()

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def append_record(path: Union[str, Path], type: str, **fields: object) -> None:
    """One-shot record append for short-lived producers (sweep workers):
    open-append-close per record keeps worker writes line-atomic without
    holding a handle across a fork boundary."""
    if type not in RECORD_TYPES:
        raise ValueError(f"unknown telemetry record type {type!r}")
    record: Dict[str, object] = {"type": type, "ts": time.time()}
    record.update(fields)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


# ---------------------------------------------------------------------- #
# Reading
# ---------------------------------------------------------------------- #


def read_stream(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Parse a telemetry stream; a truncated final line is dropped
    silently (the producer may still be writing it)."""
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                continue
    return records


def iter_stream(
    path: Union[str, Path],
    follow: bool = False,
    poll_s: float = 0.25,
    stop: Optional[callable] = None,
) -> Iterator[Dict[str, object]]:
    """Yield records as they appear; ``follow=True`` tails the file until
    ``stop()`` turns true (or forever)."""
    with open(path, "r", encoding="utf-8") as handle:
        buffer = ""
        while True:
            chunk = handle.readline()
            if chunk:
                buffer += chunk
                if not buffer.endswith("\n"):
                    continue  # partial line: wait for the rest
                line = buffer.strip()
                buffer = ""
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except ValueError:
                    continue
            else:
                if not follow or (stop is not None and stop()):
                    return
                time.sleep(poll_s)


def validate_stream(records: List[Mapping[str, object]]) -> Dict[str, int]:
    """Structural check of a parsed stream; returns per-type counts.

    Raises ``ValueError`` on an unknown record type, a record without a
    type, or a ``sample`` record missing its window fields.
    """
    counts: Dict[str, int] = {}
    for record in records:
        rtype = record.get("type")
        if not isinstance(rtype, str) or rtype not in RECORD_TYPES:
            raise ValueError(f"unknown telemetry record: {record!r}")
        if rtype == "sample":
            for key in ("cycle", "span", "rates"):
                if key not in record:
                    raise ValueError(f"sample record missing {key!r}")
        counts[rtype] = counts.get(rtype, 0) + 1
    return counts


# ---------------------------------------------------------------------- #
# Manifests
# ---------------------------------------------------------------------- #


def git_describe() -> Optional[str]:
    """``git describe --always --dirty`` of the working tree, or None."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def host_manifest() -> Dict[str, object]:
    """Who/what produced a measurement: the fields trajectory and
    telemetry comparisons need to flag cross-host mixing."""
    import importlib.util

    try:
        hostname = socket.gethostname()
    except OSError:  # pragma: no cover - esoteric hosts
        hostname = "unknown"
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "hostname": hostname,
        "cpu_count": os.cpu_count(),
        "numpy": importlib.util.find_spec("numpy") is not None,
        "git": git_describe(),
        "pid": os.getpid(),
    }


def run_manifest(config, sample_interval: Optional[int] = None) -> Dict[str, object]:
    """The ``run_start`` payload for one SystemConfig: resolved config,
    its content-addressed hash (shared with the sweep store, so a
    telemetry stream and a cached sweep point cross-reference), and the
    host manifest."""
    # Local import: obs must stay importable without the sweep package
    # in the import graph (and vice versa).
    from ..sweep.runners import config_payload
    from ..sweep.store import job_key

    payload = config_payload(config)
    return {
        "label": config.label,
        "config": payload,
        "config_key": job_key("metrics", payload),
        "seed": config.seed,
        "cycles": config.cycles,
        "warmup": config.warmup,
        "sample_interval": sample_interval,
        "host": host_manifest(),
        "argv": list(sys.argv),
    }


# ---------------------------------------------------------------------- #
# Prometheus text exposition
# ---------------------------------------------------------------------- #


def _prom_name(name: str, prefix: str) -> str:
    out = []
    for ch in f"{prefix}_{name}":
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    sanitized = "".join(out)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def prometheus_exposition(
    registry: MetricsRegistry, prefix: str = "repro"
) -> str:
    """Render a metrics registry in the Prometheus text format.

    Counters and gauges become single series; histograms become
    summaries (``_count`` / ``_sum`` plus ``quantile`` series when raw
    samples were kept).  Metric order is the registry's deterministic
    sorted order, so two snapshots of identical state diff cleanly.
    """
    lines: List[str] = []
    for name in registry.names():
        metric = registry.get(name)
        prom = _prom_name(name, prefix)
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {metric.value}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {metric.value}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {prom} summary")
            if metric.samples:
                for label, q in (("0.5", 50.0), ("0.95", 95.0), ("0.99", 99.0)):
                    lines.append(
                        f'{prom}{{quantile="{label}"}} '
                        f"{metric.percentile(q)}"
                    )
            lines.append(f"{prom}_sum {metric.total}")
            lines.append(f"{prom}_count {metric.count}")
    return "\n".join(lines) + "\n"
