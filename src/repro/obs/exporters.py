"""Trace exporters: Chrome trace-event JSON, JSONL dumps, latency reports.

The Chrome trace-event exporter writes the JSON object format consumed by
Perfetto (https://ui.perfetto.dev) and chrome://tracing: one process per
layer (cores / noc / dram), one named thread track per component
(``core3``, ``router5``, ``bank0``), timestamps in microseconds with one
simulated cycle mapped to 1 µs.  ``DATA_BEAT`` events become duration
slices spanning their burst's bus interval; everything else is a 1-cycle
slice, so a packet's life reads left-to-right across the tracks.

The latency-breakdown report answers the paper's central question per
request: of the total latency, how much was queueing/network time before
the first DRAM command, how much was DRAM service, and how much was the
response's way back (Tables I–II make the same cut fleet-wide).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .events import EventType, TraceEvent

#: Component-name prefix -> (pid, process name).  Unknown prefixes land in
#: a catch-all process so exporters never drop events.
_PROCESSES: Tuple[Tuple[str, int, str], ...] = (
    ("core", 1, "cores"),
    ("router", 2, "noc"),
    ("bank", 3, "dram"),
    ("memmax", 3, "dram"),
)
_OTHER_PID = 9


def _process_for(component: str) -> Tuple[int, str]:
    for prefix, pid, name in _PROCESSES:
        if component.startswith(prefix):
            return pid, name
    return _OTHER_PID, "other"


def chrome_trace(events: Iterable[TraceEvent]) -> Dict[str, Any]:
    """Build a Chrome trace-event document (``traceEvents`` object form)."""
    records: List[Dict[str, Any]] = []
    tids: Dict[str, int] = {}
    processes_seen: Dict[int, str] = {}
    for event in events:
        pid, process = _process_for(event.component)
        processes_seen.setdefault(pid, process)
        tid = tids.setdefault(event.component, len(tids) + 1)
        duration = 1
        if event.type is EventType.DATA_BEAT:
            data_end = event.args.get("data_end", event.cycle)
            duration = max(1, data_end - event.cycle + 1)
        args: Dict[str, Any] = {"cycle": event.cycle}
        if event.packet_id is not None:
            args["packet_id"] = event.packet_id
        if event.request_id is not None:
            args["request_id"] = event.request_id
        args.update(event.args)
        records.append(
            {
                "name": event.type.value,
                "cat": "lifecycle",
                "ph": "X",
                "ts": event.cycle,
                "dur": duration,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    records.sort(key=lambda r: (r["pid"], r["tid"], r["ts"]))
    metadata: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": name},
        }
        for pid, name in sorted(processes_seen.items())
    ]
    metadata.extend(
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _process_for(component)[0],
            "tid": tid,
            "args": {"name": component},
        }
        for component, tid in sorted(tids.items(), key=lambda item: item[1])
    )
    return {
        "traceEvents": metadata + records,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "memory cycles (1 cycle = 1 us)"},
    }


def write_chrome_trace(events: Iterable[TraceEvent], path: str) -> Dict[str, Any]:
    """Write the Chrome trace for ``events`` to ``path``; return the doc."""
    document = chrome_trace(events)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    return document


def validate_chrome_trace(document: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``document`` is a well-formed trace:
    required keys present and timestamps monotonic per (pid, tid) track."""
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("not a trace-event document (missing traceEvents)")
    last_ts: Dict[Tuple[int, int], float] = {}
    for record in document["traceEvents"]:
        for key in ("name", "ph", "pid", "tid"):
            if key not in record:
                raise ValueError(f"trace record missing {key!r}: {record}")
        if record["ph"] == "M":
            continue
        if "ts" not in record:
            raise ValueError(f"non-metadata record missing ts: {record}")
        track = (record["pid"], record["tid"])
        ts = record["ts"]
        if ts < last_ts.get(track, float("-inf")):
            raise ValueError(
                f"timestamps not monotonic on track {track}: "
                f"{ts} after {last_ts[track]}"
            )
        last_ts[track] = ts


# ---------------------------------------------------------------------- #
# JSONL
# ---------------------------------------------------------------------- #


def write_jsonl(events: Iterable[TraceEvent], path: str) -> int:
    """Dump events one-JSON-object-per-line; return the line count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event.to_dict()))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL event dump back into dict records."""
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


# ---------------------------------------------------------------------- #
# Per-request latency breakdown
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class RequestBreakdown:
    """Where one completed request's cycles went."""

    request_id: int
    inject_cycle: int
    first_dram_cycle: int
    last_data_cycle: int
    complete_cycle: int

    @property
    def total(self) -> int:
        return self.complete_cycle - self.inject_cycle

    @property
    def queue_network(self) -> int:
        """Injection to first DRAM command: NoC transit + all queueing."""
        return self.first_dram_cycle - self.inject_cycle

    @property
    def dram_service(self) -> int:
        """First DRAM command to the last data beat on the bus."""
        return self.last_data_cycle - self.first_dram_cycle

    @property
    def response_return(self) -> int:
        """Last data beat to reassembly at the master."""
        return self.complete_cycle - self.last_data_cycle


def _root_map(events: List[TraceEvent]) -> Dict[int, int]:
    """Map split-part request ids to their SAGM parent id."""
    roots: Dict[int, int] = {}
    for event in events:
        if event.type is EventType.SAGM_SPLIT and event.request_id is not None:
            for part in event.args.get("parts", ()):
                roots[part] = event.request_id
    return roots


def latency_breakdowns(events: Iterable[TraceEvent]) -> List[RequestBreakdown]:
    """Per-request breakdowns for every request with a complete lifecycle.

    Split requests are folded onto their SAGM parent: the parent's
    injection is its first part's ``INJECT``, its DRAM window spans all
    parts' commands and data beats.
    """
    events = list(events)
    roots = _root_map(events)
    inject: Dict[int, int] = {}
    first_cmd: Dict[int, int] = {}
    last_data: Dict[int, int] = {}
    complete: Dict[int, int] = {}
    for event in events:
        if event.request_id is None:
            continue
        root = roots.get(event.request_id, event.request_id)
        if event.type is EventType.INJECT:
            # Response injection at the memory NI is not request queueing.
            if event.args.get("side") == "memory":
                continue
            if root not in inject or event.cycle < inject[root]:
                inject[root] = event.cycle
        elif event.type is EventType.DRAM_CMD:
            if root not in first_cmd or event.cycle < first_cmd[root]:
                first_cmd[root] = event.cycle
        elif event.type is EventType.DATA_BEAT:
            data_end = event.args.get("data_end", event.cycle)
            if root not in last_data or data_end > last_data[root]:
                last_data[root] = data_end
        elif event.type is EventType.COMPLETE:
            complete[root] = event.cycle
    breakdowns = []
    for request_id in sorted(complete):
        if request_id not in inject or request_id not in first_cmd:
            continue
        if request_id not in last_data:
            continue
        breakdowns.append(
            RequestBreakdown(
                request_id=request_id,
                inject_cycle=inject[request_id],
                first_dram_cycle=first_cmd[request_id],
                last_data_cycle=last_data[request_id],
                complete_cycle=complete[request_id],
            )
        )
    return breakdowns


def render_latency_report(
    events: Iterable[TraceEvent], slowest: int = 8
) -> str:
    """Fleet summary plus the ``slowest`` worst requests, segment by
    segment (queue+network / DRAM service / response return)."""
    breakdowns = latency_breakdowns(events)
    if not breakdowns:
        return "latency breakdown: no fully-traced completed requests"
    count = len(breakdowns)
    mean = lambda values: sum(values) / count  # noqa: E731
    lines = [
        f"latency breakdown over {count} completed requests "
        "(cycles, mean):",
        f"  queue+network : {mean([b.queue_network for b in breakdowns]):8.1f}",
        f"  dram service  : {mean([b.dram_service for b in breakdowns]):8.1f}",
        f"  response ret. : {mean([b.response_return for b in breakdowns]):8.1f}",
        f"  total         : {mean([b.total for b in breakdowns]):8.1f}",
        "",
        f"{'slowest requests':<18s} {'queue+net':>10s} {'dram':>8s} "
        f"{'return':>8s} {'total':>8s}",
    ]
    for item in sorted(breakdowns, key=lambda b: b.total, reverse=True)[:slowest]:
        lines.append(
            f"  req#{item.request_id:<12d} {item.queue_network:>10d} "
            f"{item.dram_service:>8d} {item.response_return:>8d} "
            f"{item.total:>8d}"
        )
    return "\n".join(lines)
