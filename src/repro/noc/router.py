"""Wormhole NoC router (Fig. 3 shell), two-phase cycle model.

Every cycle has a *plan* phase (all routers decide flit movements and
arbitrate idle outputs from committed start-of-cycle state) and a *commit*
phase (all planned flit movements apply).  This keeps per-hop latency at
exactly one cycle regardless of router iteration order.

Per output channel and cycle a router:

* moves one flit of the transfer that owns the channel, provided the flit
  has arrived in the source buffer and the downstream buffer has credit —
  wormhole cut-through: long packets pipeline across hops;
* when the channel is idle (or its transfer moves its final flit this
  cycle), collects the input-buffer heads routed to it, lets the flow
  controller pick a winner, and claims that entry for a new winner-take-all
  transfer: the channel is held until the packet's last flit has left.

Newly arrived packet heads are registered with the flow controller of the
output their XY route selects — this is where GSS token bookkeeping
(Algorithm 1, lines 1-13) happens.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..obs.events import EventType
from .buffers import FlitEntry, InputBuffer
from .flow_control import Candidate, FlowController
from .packet import Packet
from .routing import RoutingPolicy, build_route_table
from .topology import Mesh, Port

#: factory(node, port) -> FlowController, chosen by the system builder.
ControllerFactory = Callable[[int, Port], FlowController]


class Transfer:
    """An in-progress winner-take-all packet transfer on one channel."""

    __slots__ = ("src_buffer", "entry", "dst_entry", "dst_buffer", "src_port")

    def __init__(
        self,
        src_buffer: InputBuffer,
        entry: FlitEntry,
        src_port: Port,
        dst_buffer: InputBuffer,
    ):
        self.src_buffer = src_buffer
        self.entry = entry
        self.dst_entry: Optional[FlitEntry] = None
        self.dst_buffer = dst_buffer
        self.src_port = src_port


class OutputPort:
    """One output channel: flow controller + downstream lanes + state.

    ``downstream`` holds one buffer per virtual channel of the next hop's
    input port; with a single lane this is plain wormhole, with two the
    second lane is reserved for priority packets so they never sit behind
    a best-effort packet in the same FIFO (Section IV-A names both input
    buffer organizations).
    """

    def __init__(self, port: Port, controller: FlowController) -> None:
        self.port = port
        self.controller = controller
        self.downstream: List[InputBuffer] = []
        #: With a single downstream lane every packet lands there, so the
        #: arbitration loop can skip :meth:`lane_for` (set by
        #: :meth:`Router.connect`; None while unwired or multi-lane).
        self._single_lane: Optional[InputBuffer] = None
        self.transfer: Optional[Transfer] = None
        self._pending_transfer: Optional[Transfer] = None
        self._move_planned = False
        self.packets_sent = 0
        self.flits_sent = 0

    @property
    def busy(self) -> bool:
        return self.transfer is not None

    def lane_for(self, packet: Packet) -> Optional[InputBuffer]:
        """The downstream lane this packet would occupy (None if unwired)."""
        if not self.downstream:
            return None
        if len(self.downstream) == 1 or not packet.is_priority:
            return self.downstream[0]
        return self.downstream[1]


class Router:
    """Five-port wormhole router with per-output flow controllers."""

    def __init__(
        self,
        node: int,
        mesh: Mesh,
        controller_factory: ControllerFactory,
        buffer_flits: int,
        local_buffer_flits: Optional[int] = None,
        routing_policy: RoutingPolicy = RoutingPolicy.XY,
        virtual_channels: int = 1,
        tracer=None,
        fault_injector=None,
    ) -> None:
        """``buffer_flits`` sizes the inter-router input buffers;
        ``local_buffer_flits`` (default: same) sizes the LOCAL injection
        buffer, which must hold a whole packet (the NI injects packets
        atomically) and is therefore usually larger.  With an adaptive
        ``routing_policy`` a packet is offered to every admissible output
        and taken by whichever wins arbitration first (the paper's
        "packets ... can be scheduled to other GSS flow controllers which
        are not busy", Section IV-A)."""
        self.node = node
        self.mesh = mesh
        self.routing_policy = routing_policy
        self.tracer = tracer
        self.fault_injector = fault_injector
        self._trace_label = f"router{node}"
        self.ports = mesh.ports(node)
        if virtual_channels < 1:
            raise ValueError("need at least one virtual channel")
        self.virtual_channels = virtual_channels
        local = local_buffer_flits if local_buffer_flits is not None else buffer_flits
        self.inputs: Dict[Port, List[InputBuffer]] = {
            port: (
                [InputBuffer(local)]  # NI injection: single lane
                if port is Port.LOCAL
                else [InputBuffer(buffer_flits) for _ in range(virtual_channels)]
            )
            for port in self.ports
        }
        self.outputs: Dict[Port, OutputPort] = {
            port: OutputPort(port, controller_factory(node, port))
            for port in self.ports
        }
        # Hot-path precomputation: admissible ports per destination (static
        # for a given mesh/policy) and flat buffer views, so the per-cycle
        # loops index instead of re-deriving routes or walking dicts.
        self._route_table = build_route_table(mesh, node, routing_policy)
        self._input_items = [
            (port, buffer) for port, lanes in self.inputs.items()
            for buffer in lanes
        ]
        # Shared entry count across all input lanes, maintained by the
        # buffers themselves: the idle check is one comparison.
        self._entry_tally = [0]
        for _, buffer in self._input_items:
            buffer.entry_tally = self._entry_tally
        self._output_list = list(self.outputs.values())
        self._controller_by_port = {
            port: output.controller for port, output in self.outputs.items()
        }
        # One bit per output (its index in ``_output_list``), and per
        # destination the OR of its admissible outputs' bits — so the
        # requested-ports superset in :meth:`plan` is integer arithmetic.
        port_bit = {
            output.port: 1 << index
            for index, output in enumerate(self._output_list)
        }
        self._output_bits = [
            (output, 1 << index)
            for index, output in enumerate(self._output_list)
        ]
        self._route_masks = [
            sum(port_bit[out_port] for out_port in routes
                if out_port in port_bit)
            for routes in self._route_table
        ]
        # Outputs whose transfer moves a flit this cycle, for commit.
        self._planned_outputs: List[OutputPort] = []
        # --- event-dispatch sleep state --------------------------------- #
        # A router goes to sleep after a provably no-op plan (no arrivals
        # registered, no flit moves planned, no channel claimed): every
        # subsequent plan is the same no-op until an input event — a flit
        # or entry landing in an input buffer (wake_consumer) or credit
        # freeing downstream (wake_credit) — which calls wake_event().
        # This is sound because a no-op plan mutates nothing and its
        # no-op-ness depends only on buffer/channel state, never on the
        # cycle number (pick() implementations are mutation-free and
        # outcome-stable on the no-candidate path).  Sleeping is enabled
        # only under event dispatch so the reference kernels keep planning
        # every non-empty router.
        self._asleep = False
        self._sleep_enabled = False
        self._net_wake = None
        for _, buffer in self._input_items:
            buffer.wake_consumer = self.wake_event
            buffer.consumer_router = self

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #

    def connect(self, port: Port, downstream) -> None:
        """Wire an output to the next hop's input lanes (buffer or list)."""
        if isinstance(downstream, InputBuffer):
            downstream = [downstream]
        output = self.outputs[port]
        output.downstream = list(downstream)
        output._single_lane = (
            output.downstream[0] if len(output.downstream) == 1 else None
        )
        # Credit freed in a downstream lane may unblock this router's
        # output channel, so it must end this router's sleep.
        for lane in output.downstream:
            lane.wake_credit = self.wake_event
            lane.credit_router = self

    def wake_event(self, at=None) -> None:
        """End this router's sleep (event-dispatch wake hook); forwards to
        the network's engine wake handle so the network itself re-arms."""
        self._asleep = False
        wake = self._net_wake
        if wake is not None:
            wake(at)

    def __getstate__(self):
        # The network's engine wake handle is a process-local closure;
        # MeshNetwork.attach_wake redistributes it on simulator rebind.
        state = self.__dict__.copy()
        state["_net_wake"] = None
        return state

    def input_buffer(self, port: Port, lane: int = 0) -> InputBuffer:
        return self.inputs[port][lane]

    def input_lanes(self, port: Port) -> List[InputBuffer]:
        return self.inputs[port]

    # ------------------------------------------------------------------ #
    # Phase 1: plan
    # ------------------------------------------------------------------ #

    @property
    def idle(self) -> bool:
        """No resident packets (and therefore no in-progress transfers —
        a transfer's source entry lives in one of this router's input
        buffers until retired): both plan and commit would be no-ops, so
        the network can skip this router."""
        return self._entry_tally[0] == 0

    def plan(self, cycle: int) -> None:
        # One pass over the inputs that hold packets: arbitration below
        # only claims existing entries (it never adds any), so the
        # ``active`` snapshot stays valid for the whole cycle.  Arrival
        # registration rides the same
        # loop — a buffer with pending arrivals always holds the arrived
        # entry (entries only leave via retire, which needs a prior
        # arbitration, which needs this registration first), so scanning
        # only occupied buffers is exact.
        #
        # ``requested`` accumulates, as a bitmask over outputs, the ports
        # any arbitratable entry could route to this cycle.  Mirroring
        # ``head_candidate``: an unclaimed head with its head flit present
        # is a candidate; behind a claimed head only the second entry can
        # be (exposed if the head retires this cycle — unknown until the
        # busy-channel loop below, so it is included whenever the head is
        # claimed).  New claims never mark an entry retiring, so nothing
        # becomes a candidate mid-arbitration: claims only *remove*
        # candidates, and this superset lets every other output skip its
        # candidate scan entirely.
        route_table = self._route_table
        route_masks = self._route_masks
        active: List = []
        requested = 0
        worked = False
        for item in self._input_items:
            buffer = item[1]
            entries = buffer.entries
            if not entries:
                continue
            active.append(item)
            if buffer._arrivals:
                worked = True
                port = item[0]
                controllers = self._controller_by_port
                for packet in buffer.drain_arrivals():
                    for out_port in route_table[packet.dst]:
                        controllers[out_port].on_arrival(port, packet, cycle)
            head = entries[0]
            if not head.claimed:
                if head.received:
                    requested |= route_masks[head.packet.dst]
            elif len(entries) > 1:
                second = entries[1]
                if not second.claimed and second.received:
                    requested |= route_masks[second.packet.dst]
        # First plan flit movements for busy channels, so buffers know which
        # heads retire this cycle before any output arbitrates.
        planned = self._planned_outputs
        planned.clear()
        arbitrating: List[Tuple[OutputPort, int]] = []
        # No per-output ``_move_planned`` reset needed here: the flag is
        # only ever True between the plan that appended the output to
        # ``planned`` and the commit that consumes it (which clears it),
        # and commit ignores outputs outside the current ``planned`` list.
        for pair in self._output_bits:
            output, bit = pair
            transfer = output.transfer
            if transfer is None:
                if requested & bit:
                    arbitrating.append(pair)
                continue
            entry = transfer.entry
            if entry.received > entry.sent and transfer.dst_buffer.has_credit():
                output._move_planned = True
                planned.append(output)
                if entry.sent + 1 >= entry.packet.size_flits:
                    entry.retiring = True
                    if requested & bit:
                        arbitrating.append(pair)
        if arbitrating:
            # Head candidates are resolved once per cycle, after the busy
            # loop above fixed the ``retiring`` flags.  Arbitration only
            # *claims* entries — a freshly claimed head never exposes the
            # entry behind it (that needs ``retiring``) — so later outputs
            # see the same candidates minus the claimed ones, which the
            # per-output claimed filter in :meth:`_arbitrate` reproduces
            # exactly.
            heads: List = []
            for port, buffer in active:
                entry = buffer.head_candidate()
                if entry is not None:
                    heads.append(
                        (port, buffer, entry, route_masks[entry.packet.dst])
                    )
            for output, bit in arbitrating:
                if self._arbitrate(output, bit, cycle, heads):
                    worked = True
        if self._sleep_enabled and not worked and not planned:
            self._asleep = True

    def _routes(self, packet: Packet) -> Tuple[Port, ...]:
        return self._route_table[packet.dst]

    def _arbitrate(
        self, output: OutputPort, bit: int, cycle: int, heads: List
    ) -> bool:
        """Arbitrate one idle output; returns whether a channel was claimed
        (the sleep logic in :meth:`plan` counts claims as work)."""
        if not output.downstream:
            return False
        single = output._single_lane
        candidates: List[Candidate] = []
        sources = []
        for port, buffer, entry, mask in heads:
            if not mask & bit or entry.claimed:
                continue
            packet = entry.packet
            lane = single if single is not None else output.lane_for(packet)
            # Inlined can_open_entry: the plain (no packet-slot cap) case
            # is just the flit-credit comparison.
            if lane.max_packets is None:
                if lane._occupancy >= lane.capacity_flits:
                    continue
            elif not lane.can_open_entry():
                continue
            candidates.append((port, packet))
            sources.append((packet, entry, buffer, lane))
        if not candidates:
            return False
        winner = output.controller.pick(candidates, cycle)
        if winner is None:
            return False
        port, packet = winner
        entry = src_buffer = dst_buffer = None
        for won, won_entry, won_buffer, won_lane in sources:
            if won is packet:
                entry, src_buffer, dst_buffer = won_entry, won_buffer, won_lane
                break
        assert entry is not None, "controller picked a non-candidate packet"
        entry.claimed = True
        dst_buffer.reserve_slot()
        output.controller.on_scheduled(port, packet, cycle)
        # Adaptive routing: withdraw the packet from the controllers of the
        # other admissible outputs.
        routes = self._route_table[packet.dst]
        if len(routes) > 1:
            for other_port in routes:
                if other_port is not output.port:
                    self._controller_by_port[other_port].on_withdrawn(
                        packet, cycle
                    )
        next_transfer = Transfer(src_buffer, entry, port, dst_buffer)
        if output.transfer is None:
            output.transfer = next_transfer
        else:
            # Current transfer finishes this cycle; queue the successor.
            output._pending_transfer = next_transfer
        return True

    # ------------------------------------------------------------------ #
    # Phase 2: commit
    # ------------------------------------------------------------------ #

    def commit(self, cycle: int) -> None:
        planned = self._planned_outputs
        if not planned:
            return
        injector = self.fault_injector
        for output in planned:
            if not output._move_planned:
                continue
            output._move_planned = False
            transfer = output.transfer
            assert transfer is not None
            entry = transfer.entry
            dst_buffer = transfer.dst_buffer
            dst_entry = transfer.dst_entry
            if dst_entry is None:
                dst_entry = transfer.dst_entry = dst_buffer.open_entry(
                    entry.packet
                )
            # Inlined commit_flit/send_flit: plan only schedules this move
            # after checking downstream credit and ``received > sent``
            # (so neither end is past the packet), and links are
            # point-to-point with NIs ticking before the network, so the
            # state cannot change between plan and commit.
            dst_entry.received += 1
            occupancy = dst_buffer._occupancy + 1
            dst_buffer._occupancy = occupancy
            if occupancy > dst_buffer.highwater_flits:
                dst_buffer.highwater_flits = occupancy
            entry.sent += 1
            transfer.src_buffer._occupancy -= 1
            output.flits_sent += 1
            # Event wakes, inline like the flit move above: data landed
            # downstream (consumer) and a credit freed upstream.  When the
            # target is a router, clearing its sleep flag suffices — the
            # engine re-arms the network from event_wake_at right after
            # this tick, which sees the now-awake router.  NI-facing
            # buffers (local sinks) take the full hook so the NI's own
            # engine wake still fires.
            target = dst_buffer.consumer_router
            if target is not None:
                target._asleep = False
            else:
                wake = dst_buffer.wake_consumer
                if wake is not None:
                    wake()
            src_buffer = transfer.src_buffer
            target = src_buffer.credit_router
            if target is not None:
                target._asleep = False
            else:
                wake = src_buffer.wake_credit
                if wake is not None:
                    wake()
            if injector is not None:
                injector.on_link_flit(
                    cycle, self.node, output.port, entry.packet
                )
            if entry.sent >= entry.packet.size_flits:
                packet = transfer.src_buffer.retire_head()
                assert packet is transfer.entry.packet
                output.controller.on_delivered(packet, cycle)
                output.packets_sent += 1
                output.transfer = output._pending_transfer
                output._pending_transfer = None
                tracer = self.tracer
                if tracer:
                    request = packet.request
                    tracer.emit(
                        EventType.HOP,
                        cycle,
                        self._trace_label,
                        packet_id=packet.packet_id,
                        request_id=(
                            request.request_id if request is not None else None
                        ),
                        port=output.port.name,
                        flits=packet.size_flits,
                    )

    # ------------------------------------------------------------------ #

    def tick(self, cycle: int) -> None:
        """Single-phase convenience for standalone router tests."""
        self.plan(cycle)
        self.commit(cycle)

    @property
    def queued_packets(self) -> int:
        return sum(
            len(buffer) for lanes in self.inputs.values() for buffer in lanes
        )
