"""Wormhole NoC router (Fig. 3 shell), two-phase cycle model.

Every cycle has a *plan* phase (all routers decide flit movements and
arbitrate idle outputs from committed start-of-cycle state) and a *commit*
phase (all planned flit movements apply).  This keeps per-hop latency at
exactly one cycle regardless of router iteration order.

Per output channel and cycle a router:

* moves one flit of the transfer that owns the channel, provided the flit
  has arrived in the source buffer and the downstream buffer has credit —
  wormhole cut-through: long packets pipeline across hops;
* when the channel is idle (or its transfer moves its final flit this
  cycle), collects the input-buffer heads routed to it, lets the flow
  controller pick a winner, and claims that entry for a new winner-take-all
  transfer: the channel is held until the packet's last flit has left.

Newly arrived packet heads are registered with the flow controller of the
output their XY route selects — this is where GSS token bookkeeping
(Algorithm 1, lines 1-13) happens.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..obs.events import EventType
from .buffers import FlitEntry, InputBuffer
from .flow_control import Candidate, FlowController
from .packet import Packet
from .routing import RoutingPolicy, admissible_ports, xy_route
from .topology import Mesh, Port

#: factory(node, port) -> FlowController, chosen by the system builder.
ControllerFactory = Callable[[int, Port], FlowController]


class Transfer:
    """An in-progress winner-take-all packet transfer on one channel."""

    __slots__ = ("src_buffer", "entry", "dst_entry", "dst_buffer", "src_port")

    def __init__(
        self,
        src_buffer: InputBuffer,
        entry: FlitEntry,
        src_port: Port,
        dst_buffer: InputBuffer,
    ):
        self.src_buffer = src_buffer
        self.entry = entry
        self.dst_entry: Optional[FlitEntry] = None
        self.dst_buffer = dst_buffer
        self.src_port = src_port


class OutputPort:
    """One output channel: flow controller + downstream lanes + state.

    ``downstream`` holds one buffer per virtual channel of the next hop's
    input port; with a single lane this is plain wormhole, with two the
    second lane is reserved for priority packets so they never sit behind
    a best-effort packet in the same FIFO (Section IV-A names both input
    buffer organizations).
    """

    def __init__(self, port: Port, controller: FlowController) -> None:
        self.port = port
        self.controller = controller
        self.downstream: List[InputBuffer] = []
        self.transfer: Optional[Transfer] = None
        self._pending_transfer: Optional[Transfer] = None
        self._move_planned = False
        self.packets_sent = 0
        self.flits_sent = 0

    @property
    def busy(self) -> bool:
        return self.transfer is not None

    def lane_for(self, packet: Packet) -> Optional[InputBuffer]:
        """The downstream lane this packet would occupy (None if unwired)."""
        if not self.downstream:
            return None
        if len(self.downstream) == 1 or not packet.is_priority:
            return self.downstream[0]
        return self.downstream[1]


class Router:
    """Five-port wormhole router with per-output flow controllers."""

    def __init__(
        self,
        node: int,
        mesh: Mesh,
        controller_factory: ControllerFactory,
        buffer_flits: int,
        local_buffer_flits: Optional[int] = None,
        routing_policy: RoutingPolicy = RoutingPolicy.XY,
        virtual_channels: int = 1,
        tracer=None,
        fault_injector=None,
    ) -> None:
        """``buffer_flits`` sizes the inter-router input buffers;
        ``local_buffer_flits`` (default: same) sizes the LOCAL injection
        buffer, which must hold a whole packet (the NI injects packets
        atomically) and is therefore usually larger.  With an adaptive
        ``routing_policy`` a packet is offered to every admissible output
        and taken by whichever wins arbitration first (the paper's
        "packets ... can be scheduled to other GSS flow controllers which
        are not busy", Section IV-A)."""
        self.node = node
        self.mesh = mesh
        self.routing_policy = routing_policy
        self.tracer = tracer
        self.fault_injector = fault_injector
        self._trace_label = f"router{node}"
        self.ports = mesh.ports(node)
        if virtual_channels < 1:
            raise ValueError("need at least one virtual channel")
        self.virtual_channels = virtual_channels
        local = local_buffer_flits if local_buffer_flits is not None else buffer_flits
        self.inputs: Dict[Port, List[InputBuffer]] = {
            port: (
                [InputBuffer(local)]  # NI injection: single lane
                if port is Port.LOCAL
                else [InputBuffer(buffer_flits) for _ in range(virtual_channels)]
            )
            for port in self.ports
        }
        self.outputs: Dict[Port, OutputPort] = {
            port: OutputPort(port, controller_factory(node, port))
            for port in self.ports
        }

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #

    def connect(self, port: Port, downstream) -> None:
        """Wire an output to the next hop's input lanes (buffer or list)."""
        if isinstance(downstream, InputBuffer):
            downstream = [downstream]
        self.outputs[port].downstream = list(downstream)

    def input_buffer(self, port: Port, lane: int = 0) -> InputBuffer:
        return self.inputs[port][lane]

    def input_lanes(self, port: Port) -> List[InputBuffer]:
        return self.inputs[port]

    # ------------------------------------------------------------------ #
    # Phase 1: plan
    # ------------------------------------------------------------------ #

    def plan(self, cycle: int) -> None:
        self._register_arrivals(cycle)
        # First plan flit movements for busy channels, so buffers know which
        # heads retire this cycle before any output arbitrates.
        arbitrating: List[OutputPort] = []
        for output in self.outputs.values():
            output._move_planned = False
            transfer = output.transfer
            if transfer is None:
                arbitrating.append(output)
                continue
            flit_ready = transfer.entry.resident_flits >= 1
            credit = transfer.dst_buffer.has_credit()
            if flit_ready and credit:
                output._move_planned = True
                if transfer.entry.sent + 1 >= transfer.entry.packet.size_flits:
                    transfer.entry.retiring = True
                    arbitrating.append(output)
        for output in arbitrating:
            self._arbitrate(output, cycle)

    def _register_arrivals(self, cycle: int) -> None:
        for port, lanes in self.inputs.items():
            for buffer in lanes:
                for packet in buffer.drain_arrivals():
                    for out_port in self._routes(packet):
                        self.outputs[out_port].controller.on_arrival(
                            port, packet, cycle
                        )

    def _routes(self, packet: Packet) -> List[Port]:
        return admissible_ports(
            self.mesh, self.node, packet.dst, self.routing_policy
        )

    def _arbitrate(self, output: OutputPort, cycle: int) -> None:
        if not output.downstream:
            return
        candidates = self._candidates_for(output)
        if not candidates:
            return
        winner = output.controller.pick(candidates, cycle)
        if winner is None:
            return
        port, packet = winner
        entry, src_buffer = self._claimable_entry(port, packet)
        assert entry is not None, "controller picked a non-candidate packet"
        dst_buffer = output.lane_for(packet)
        assert dst_buffer is not None
        entry.claimed = True
        dst_buffer.reserve_slot()
        output.controller.on_scheduled(port, packet, cycle)
        # Adaptive routing: withdraw the packet from the controllers of the
        # other admissible outputs.
        for other_port in self._routes(packet):
            if other_port is not output.port:
                self.outputs[other_port].controller.on_withdrawn(packet, cycle)
        next_transfer = Transfer(src_buffer, entry, port, dst_buffer)
        if output.transfer is None:
            output.transfer = next_transfer
        else:
            # Current transfer finishes this cycle; queue the successor.
            output._pending_transfer = next_transfer

    def _claimable_entry(self, port: Port, packet: Packet):
        for buffer in self.inputs[port]:
            entry = buffer.head_candidate()
            if entry is not None and entry.packet is packet:
                return entry, buffer
        return None, None

    def _candidates_for(self, output: OutputPort) -> List[Candidate]:
        candidates: List[Candidate] = []
        for port, lanes in self.inputs.items():
            for buffer in lanes:
                entry = buffer.head_candidate()
                if entry is None:
                    continue
                if output.port not in self._routes(entry.packet):
                    continue
                lane = output.lane_for(entry.packet)
                if lane is None or not lane.can_open_entry():
                    continue
                candidates.append((port, entry.packet))
        return candidates

    # ------------------------------------------------------------------ #
    # Phase 2: commit
    # ------------------------------------------------------------------ #

    def commit(self, cycle: int) -> None:
        for output in self.outputs.values():
            if not output._move_planned:
                continue
            output._move_planned = False
            transfer = output.transfer
            assert transfer is not None
            if transfer.dst_entry is None:
                transfer.dst_entry = transfer.dst_buffer.open_entry(
                    transfer.entry.packet
                )
            transfer.dst_buffer.commit_flit(transfer.dst_entry)
            transfer.entry.sent += 1
            output.flits_sent += 1
            injector = self.fault_injector
            if injector is not None:
                injector.on_link_flit(
                    cycle, self.node, output.port, transfer.entry.packet
                )
            if transfer.entry.fully_sent:
                packet = transfer.src_buffer.retire_head()
                assert packet is transfer.entry.packet
                output.controller.on_delivered(packet, cycle)
                output.packets_sent += 1
                output.transfer = output._pending_transfer
                output._pending_transfer = None
                tracer = self.tracer
                if tracer:
                    request = packet.request
                    tracer.emit(
                        EventType.HOP,
                        cycle,
                        self._trace_label,
                        packet_id=packet.packet_id,
                        request_id=(
                            request.request_id if request is not None else None
                        ),
                        port=output.port.name,
                        flits=packet.size_flits,
                    )

    # ------------------------------------------------------------------ #

    def tick(self, cycle: int) -> None:
        """Single-phase convenience for standalone router tests."""
        self.plan(cycle)
        self.commit(cycle)

    @property
    def queued_packets(self) -> int:
        return sum(
            len(buffer) for lanes in self.inputs.values() for buffer in lanes
        )
