"""Network interfaces: core-side (master) and memory-side (slave).

The core-side :class:`CoreInterface` pulls requests from a traffic
generator, optionally splits them per SAGM, injects request packets into
its router's LOCAL input buffer, and reassembles the split responses —
recording each *original* request's latency when its last response part
arrives (request creation to final data delivery, in memory-clock cycles,
matching the paper's latency metric).

The memory-side :class:`MemoryInterface` admits request packets into the
memory subsystem with backpressure, ticks the subsystem, and turns finished
requests into response packets (read data or write acknowledge) injected
back into the mesh once their final data beat has left the SDRAM bus.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import replace
from itertools import count
from typing import Deque, Dict, Iterator, List, Optional, Protocol, Tuple

from ..dram.ecc import EccOutcome
from ..dram.request import MemoryRequest
from ..obs.events import EventType
from ..sim.stats import StatsCollector
from .buffers import InputBuffer
from .packet import Packet, request_packet, response_packet


class TrafficGenerator(Protocol):
    """A core's memory-traffic model (see :mod:`repro.workloads.cores`)."""

    master: int

    def generate(self, cycle: int) -> List[MemoryRequest]:
        """New requests issued this cycle."""

    def on_complete(self, request_id: int, cycle: int) -> None:
        """A previously issued request finished (frees an outstanding slot)."""


class Splitter(Protocol):
    """SAGM splitter interface (see :class:`repro.core.sagm.SagmSplitter`)."""

    def split(self, request: MemoryRequest, id_source: Iterator[int]) -> List[MemoryRequest]:
        ...


class _Reassembly:
    """Tracks outstanding parts of one (possibly split) request.

    ``parts`` keeps the split requests so the watchdog can re-issue them;
    ``epoch`` is the current re-issue generation (responses carrying an
    older ``retry_epoch`` are stale duplicates); ``last_activity`` is the
    cycle of the last accepted part response (or the issue/re-issue),
    which the watchdog measures timeouts against.
    """

    __slots__ = ("original", "remaining", "parts", "epoch", "last_activity")

    def __init__(
        self, original: MemoryRequest, parts: List[MemoryRequest], cycle: int
    ) -> None:
        self.original = original
        self.remaining = len(parts)
        self.parts = parts
        self.epoch = 0
        self.last_activity = cycle


class CoreInterface:
    """Master-side NI for one core node."""

    #: Simulator dispatch hint: tick() gates every phase on cheap state
    #: checks itself, so a separate per-cycle is_idle probe would cost
    #: about as much as the tick it skips.  Fast-forward still consults
    #: is_idle()/wake_at().
    step_self_gating = True

    def __init__(
        self,
        node: int,
        memory_node: int,
        generator: TrafficGenerator,
        injection_buffer: InputBuffer,
        sink: InputBuffer,
        stats: StatsCollector,
        packet_ids: Iterator[int],
        request_ids: Iterator[int],
        splitter: Optional[Splitter] = None,
        tracer=None,
        resilience=None,
    ) -> None:
        self.node = node
        self.memory_node = memory_node
        self.generator = generator
        self.injection_buffer = injection_buffer
        self.sink = sink
        self.stats = stats
        self.packet_ids = packet_ids
        self.request_ids = request_ids
        self.splitter = splitter
        self.tracer = tracer
        #: :class:`repro.resilience.protection.ResilienceController` when
        #: fault protection is enabled; ``None`` keeps every check off the
        #: hot path.
        self.resilience = resilience
        self._trace_label = f"core{generator.master}"
        self._pending: Deque[Packet] = deque()
        self._reassembly: Dict[int, _Reassembly] = {}
        self.injected_packets = 0
        self.completed_requests = 0
        self.failed_requests = 0
        #: When set, stop pulling new requests from the generator — the
        #: drain phase of a run (outstanding work still completes).
        self.draining = False
        self._wake = None

    @property
    def generator(self) -> TrafficGenerator:
        return self._generator

    @generator.setter
    def generator(self, generator: TrafficGenerator) -> None:
        # Trace capture/replay swap generators after construction, so the
        # idle-skip schedulability flag follows every assignment.
        self._generator = generator
        self._generator_schedulable = hasattr(generator, "next_issue_cycle")

    def tick(self, cycle: int) -> None:
        if self.sink.entries:
            self._receive(cycle)
        if not self.draining:
            # A schedulable generator's generate() is a strict no-op
            # before next_issue_cycle (and forever once it is None), so
            # skipping the call entirely is bit-identical.
            if self._generator_schedulable:
                next_issue = self._generator.next_issue_cycle
                if next_issue is not None and next_issue <= cycle:
                    self._generate(cycle)
            else:
                self._generate(cycle)
        if self._pending:
            self._inject(cycle)

    # ------------------------------------------------------------------ #
    # Simulator idle-skip contract
    # ------------------------------------------------------------------ #

    def is_idle(self, cycle: int) -> bool:
        """True iff ticking now would do nothing: nothing queued for
        injection, no outstanding responses, an empty sink, and a
        generator that is provably quiet this cycle (its ``generate``
        early-returns before drawing any randomness, so skipping keeps the
        RNG stream bit-identical)."""
        if self._pending or self._reassembly or self.sink.entries:
            return False
        if self.draining:
            return True
        if not self._generator_schedulable:
            return False
        next_issue = self.generator.next_issue_cycle
        return next_issue is None or cycle < next_issue

    def wake_at(self) -> Optional[int]:
        if self.draining or not self._generator_schedulable:
            return None
        return self.generator.next_issue_cycle

    # ------------------------------------------------------------------ #
    # Event-dispatch contract
    # ------------------------------------------------------------------ #

    def attach_wake(self, wake) -> None:
        self._wake = wake
        # Response flits landing in the sink must wake this NI.
        self.sink.wake_consumer = wake

    def __getstate__(self):
        # The engine wake handle is a process-local closure; a restored
        # simulator re-issues it through attach_wake on rebind.
        state = self.__dict__.copy()
        state["_wake"] = None
        return state

    def event_wake_at(self, cycle: int) -> Optional[int]:
        if self._pending or self.sink.entries:
            return cycle + 1
        if self.draining:
            return None
        if not self._generator_schedulable:
            return cycle + 1  # unschedulable generator: poll every cycle
        generator = self._generator
        if getattr(generator, "issue_blocked", False):
            # Capped at max outstanding: generate() is a strict no-op
            # until a completion arrives — which comes through the sink
            # (wake hook) or a resilience fail_request (explicit wake).
            return None
        next_issue = generator.next_issue_cycle
        if next_issue is None:
            return None
        return next_issue if next_issue > cycle else cycle + 1

    # ------------------------------------------------------------------ #

    def _receive(self, cycle: int) -> None:
        resilience = self.resilience
        while True:
            packet = self.sink.pop_complete()
            if packet is None:
                break
            request = packet.request
            assert request is not None and packet.is_response
            if resilience is not None and packet.corrupted:
                # CRC failure: discard; the controller NACKs the memory NI
                # into retransmitting after backoff.
                resilience.on_corrupt_response(cycle, packet)
                continue
            parent = request.parent_id if request.parent_id is not None else request.request_id
            tracker = self._reassembly.get(parent)
            if tracker is None:
                if resilience is not None:
                    # Straggler of a failed or re-issued request.
                    resilience.note_stale_response(request)
                    continue
                raise RuntimeError(f"response for unknown request {parent}")
            if resilience is not None:
                if request.retry_epoch != tracker.epoch:
                    resilience.note_stale_response(request)
                    continue
                resilience.on_response_delivered(request)
                tracker.last_activity = cycle
            tracker.remaining -= 1
            if tracker.remaining == 0:
                original = tracker.original
                del self._reassembly[parent]
                self.stats.record_completion(
                    cycle,
                    original.issued_cycle,
                    original.master,
                    original.is_demand,
                )
                self.generator.on_complete(original.request_id, cycle)
                self.completed_requests += 1
                tracer = self.tracer
                if tracer:
                    tracer.emit(
                        EventType.COMPLETE,
                        cycle,
                        self._trace_label,
                        request_id=original.request_id,
                        latency=cycle - original.issued_cycle,
                        demand=original.is_demand,
                    )

    def _generate(self, cycle: int) -> None:
        if self.draining:
            return
        for request in self.generator.generate(cycle):
            request.issued_cycle = cycle
            if self.splitter is not None:
                parts = self.splitter.split(request, self.request_ids)
            else:
                parts = [request]
            self._reassembly[request.request_id] = _Reassembly(request, parts, cycle)
            for part in parts:
                self._pending.append(
                    request_packet(
                        next(self.packet_ids), part, self.node, self.memory_node, cycle
                    )
                )

    def _inject(self, cycle: int) -> None:
        while self._pending:
            packet = self._pending[0]
            if not self.injection_buffer.can_inject(packet):
                break
            self.injection_buffer.push_complete(packet)
            self._pending.popleft()
            self.injected_packets += 1
            tracer = self.tracer
            if tracer:
                request = packet.request
                tracer.emit(
                    EventType.INJECT,
                    cycle,
                    self._trace_label,
                    packet_id=packet.packet_id,
                    request_id=(
                        request.request_id if request is not None else None
                    ),
                    node=self.node,
                    dst=packet.dst,
                    flits=packet.size_flits,
                )

    # ------------------------------------------------------------------ #
    # Resilience hooks (no-ops in a fault-free system)
    # ------------------------------------------------------------------ #

    def retransmit_request(self, part: MemoryRequest, cycle: int) -> None:
        """Rebuild and re-queue the request packet for one split part
        (CRC NACK recovery; called by the resilience controller once the
        backoff has elapsed)."""
        self._pending.append(
            request_packet(
                next(self.packet_ids), part, self.node, self.memory_node, cycle
            )
        )
        wake = self._wake
        if wake is not None:
            wake()

    def reissue(self, parent: int, cycle: int) -> None:
        """Watchdog re-issue: re-inject every part of ``parent`` under a
        new retry epoch; in-flight responses from older epochs become
        stale duplicates."""
        tracker = self._reassembly.get(parent)
        if tracker is None:
            return
        tracker.epoch += 1
        tracker.remaining = len(tracker.parts)
        tracker.last_activity = cycle
        for part in tracker.parts:
            clone = replace(part, retry_epoch=tracker.epoch)
            self._pending.append(
                request_packet(
                    next(self.packet_ids), clone, self.node, self.memory_node, cycle
                )
            )
        wake = self._wake
        if wake is not None:
            wake()

    def fail_request(self, parent: int, cycle: int) -> bool:
        """Surface ``parent`` as failed: drop its reassembly state and
        release the generator's outstanding slot, with no completion
        recorded.  Returns whether the request was still outstanding."""
        tracker = self._reassembly.pop(parent, None)
        if tracker is None:
            return False
        self.generator.on_complete(tracker.original.request_id, cycle)
        self.failed_requests += 1
        wake = self._wake
        if wake is not None:
            wake()  # the freed outstanding slot may unblock the generator
        return True

    @property
    def outstanding(self) -> int:
        return len(self._reassembly)


class MemoryInterface:
    """Slave-side NI wrapping the memory subsystem at the memory node."""

    def __init__(
        self,
        node: int,
        subsystem,
        sink: InputBuffer,
        injection_buffer: InputBuffer,
        master_nodes: Dict[int, int],
        packet_ids: Iterator[int],
        priority_responses: bool = False,
        tracer=None,
        resilience=None,
    ) -> None:
        """With ``priority_responses`` the NI injects ready responses for
        priority requests ahead of best-effort ones (the output buffer of
        Fig. 6 builds service packets; a QoS-aware NI dequeues priority
        data first).  Response reordering is safe: masters reassemble
        split responses by part count, not order."""
        self.node = node
        self.subsystem = subsystem
        self.sink = sink
        self.injection_buffer = injection_buffer
        self.master_nodes = master_nodes
        self.packet_ids = packet_ids
        self.priority_responses = priority_responses
        self.tracer = tracer
        self.resilience = resilience
        self._trace_label = f"ni{node}"
        self._ready: List[Tuple[int, int, int, MemoryRequest]] = []  # heap
        self._sequence = count()
        self.admitted = 0
        self.responses_sent = 0
        self._wake = None

    def tick(self, cycle: int) -> None:
        if self.is_idle(cycle):
            # Quiet fast path: with nothing buffered anywhere and no
            # refresh due, the full pipeline below reduces to the SDRAM
            # device's per-cycle observed-cycle accounting.
            self.subsystem.device.tick(cycle)
            return
        resilience = self.resilience
        self._admit(cycle)
        self.subsystem.tick(cycle)
        for finished in self.subsystem.drain_finished():
            if resilience is not None:
                outcome = resilience.on_dram_burst(cycle, finished.request)
                if outcome is EccOutcome.DETECTED:
                    # Uncorrectable read data: the controller queued a
                    # device re-read (or failed the request) — resending
                    # the response would resend the same bad data.
                    continue
            ready = max(cycle + 1, finished.data_ready_cycle + 1)
            rank = (
                0 if self.priority_responses and finished.request.is_priority
                else 1
            )
            heapq.heappush(
                self._ready,
                (ready, rank, next(self._sequence), finished.request),
            )
        self._respond(cycle)

    def _admit(self, cycle: int) -> None:
        resilience = self.resilience
        if resilience is not None and resilience.dram_retries:
            # ECC re-reads go first: their requester has waited longest.
            retries = resilience.dram_retries
            while retries and self.subsystem.can_accept(retries[0]):
                self.subsystem.enqueue(retries.popleft(), cycle)
        while True:
            head = self.sink.head()
            if head is None or head.claimed or not head.fully_received:
                break
            packet = head.packet
            request = packet.request
            assert request is not None
            if resilience is not None and packet.corrupted:
                # CRC failure on arrival: discard and NACK the sender.
                self.sink.pop_complete()
                resilience.on_corrupt_request(cycle, packet)
                continue
            if not self.subsystem.can_accept(request):
                break
            self.sink.pop_complete()
            self.subsystem.enqueue(request, cycle)
            self.admitted += 1
            if resilience is not None:
                resilience.on_request_admitted(request)

    def _respond(self, cycle: int) -> None:
        if self.priority_responses:
            self._promote_ready_priority(cycle)
        while self._ready and self._ready[0][0] <= cycle:
            _, _, _, request = self._ready[0]
            dst = self.master_nodes[request.master]
            packet = response_packet(
                next(self.packet_ids), request, self.node, dst, cycle
            )
            if not self.injection_buffer.can_inject(packet):
                break
            heapq.heappop(self._ready)
            self.injection_buffer.push_complete(packet)
            self.responses_sent += 1
            tracer = self.tracer
            if tracer:
                tracer.emit(
                    EventType.INJECT,
                    cycle,
                    self._trace_label,
                    packet_id=packet.packet_id,
                    request_id=request.request_id,
                    node=self.node,
                    dst=dst,
                    flits=packet.size_flits,
                    side="memory",
                )

    def resend_response(self, request: MemoryRequest, cycle: int) -> None:
        """Retransmit the (still buffered) response for ``request`` —
        called by the resilience controller after a CRC NACK backoff."""
        rank = 0 if self.priority_responses and request.is_priority else 1
        heapq.heappush(
            self._ready, (cycle, rank, next(self._sequence), request)
        )
        wake = self._wake
        if wake is not None:
            wake()

    def _promote_ready_priority(self, cycle: int) -> None:
        """Among responses whose data is ready, inject priority ones first
        (they would otherwise queue in ready-time order)."""
        if not self._ready:
            return
        ready_now = [item for item in self._ready if item[0] <= cycle]
        if not ready_now:
            return
        best = min(ready_now, key=lambda item: (item[1], item[0], item[2]))
        if best[1] == 0 and best is not self._ready[0]:
            self._ready.remove(best)
            heapq.heapify(self._ready)
            heapq.heappush(self._ready, (cycle, best[1], best[2], best[3]))

    @property
    def idle(self) -> bool:
        return (
            self.sink.head() is None
            and self.subsystem.idle
            and not self._ready
        )

    # ------------------------------------------------------------------ #
    # Simulator idle-skip contract
    # ------------------------------------------------------------------ #

    def is_idle(self, cycle: int) -> bool:
        """True iff a tick would only perform the device's per-cycle
        accounting: nothing buffered at any stage, no ECC retries queued,
        and no refresh due or in flight."""
        if self._ready or self.sink.entries:
            return False
        resilience = self.resilience
        if resilience is not None and resilience.dram_retries:
            return False
        if not self.subsystem.quiescent:
            return False
        refresh = self.subsystem.refresh
        if refresh is not None and refresh.enabled and (
            refresh.due(cycle) or refresh.in_progress(cycle)
        ):
            return False
        return True

    def wake_at(self) -> Optional[int]:
        refresh = self.subsystem.refresh
        if refresh is not None and refresh.enabled:
            return refresh.next_due_cycle
        return None

    def on_cycles_skipped(self, start: int, stop: int) -> None:
        """Fast-forwarded cycles still elapse for the SDRAM utilization
        denominator (the per-cycle accounting the skipped ticks carry)."""
        self.subsystem.on_cycles_skipped(start, stop)

    # ------------------------------------------------------------------ #
    # Event-dispatch contract
    # ------------------------------------------------------------------ #

    def attach_wake(self, wake) -> None:
        self._wake = wake
        # Request flits landing in the sink must wake this NI.
        self.sink.wake_consumer = wake

    def __getstate__(self):
        # Engine wake handles are process-local; rebind re-issues them.
        state = self.__dict__.copy()
        state["_wake"] = None
        return state

    def event_wake_at(self, cycle: int) -> Optional[int]:
        """Next cycle with possible work.  Buffered stages poll per cycle
        (they make progress most cycles at the paper's operating point);
        a subsystem stalled purely on SDRAM timing sleeps until the
        controller's earliest possible command (the big event-dispatch
        win: no ticks during tRC/tRP/tRCD/refresh stalls)."""
        nxt = None
        if self.sink.entries:
            nxt = cycle + 1
        else:
            resilience = self.resilience
            if resilience is not None and resilience.dram_retries:
                nxt = cycle + 1
        if self._ready:
            ready = self._ready[0][0]
            if ready <= cycle:
                ready = cycle + 1
            if nxt is None or ready < nxt:
                nxt = ready
        if nxt != cycle + 1:
            sub = self.subsystem.next_event_cycle(cycle)
            if sub is not None:
                if sub <= cycle:
                    sub = cycle + 1
                if nxt is None or sub < nxt:
                    nxt = sub
        return nxt
