"""Network interfaces: core-side (master) and memory-side (slave).

The core-side :class:`CoreInterface` pulls requests from a traffic
generator, optionally splits them per SAGM, injects request packets into
its router's LOCAL input buffer, and reassembles the split responses —
recording each *original* request's latency when its last response part
arrives (request creation to final data delivery, in memory-clock cycles,
matching the paper's latency metric).

The memory-side :class:`MemoryInterface` admits request packets into the
memory subsystem with backpressure, ticks the subsystem, and turns finished
requests into response packets (read data or write acknowledge) injected
back into the mesh once their final data beat has left the SDRAM bus.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Dict, Iterator, List, Optional, Protocol, Tuple

from ..dram.request import MemoryRequest
from ..obs.events import EventType
from ..sim.stats import StatsCollector
from .buffers import InputBuffer
from .packet import Packet, request_packet, response_packet


class TrafficGenerator(Protocol):
    """A core's memory-traffic model (see :mod:`repro.workloads.cores`)."""

    master: int

    def generate(self, cycle: int) -> List[MemoryRequest]:
        """New requests issued this cycle."""

    def on_complete(self, request_id: int, cycle: int) -> None:
        """A previously issued request finished (frees an outstanding slot)."""


class Splitter(Protocol):
    """SAGM splitter interface (see :class:`repro.core.sagm.SagmSplitter`)."""

    def split(self, request: MemoryRequest, id_source: Iterator[int]) -> List[MemoryRequest]:
        ...


class _Reassembly:
    """Tracks outstanding parts of one (possibly split) request."""

    __slots__ = ("original", "remaining")

    def __init__(self, original: MemoryRequest, parts: int) -> None:
        self.original = original
        self.remaining = parts


class CoreInterface:
    """Master-side NI for one core node."""

    def __init__(
        self,
        node: int,
        memory_node: int,
        generator: TrafficGenerator,
        injection_buffer: InputBuffer,
        sink: InputBuffer,
        stats: StatsCollector,
        packet_ids: Iterator[int],
        request_ids: Iterator[int],
        splitter: Optional[Splitter] = None,
        tracer=None,
    ) -> None:
        self.node = node
        self.memory_node = memory_node
        self.generator = generator
        self.injection_buffer = injection_buffer
        self.sink = sink
        self.stats = stats
        self.packet_ids = packet_ids
        self.request_ids = request_ids
        self.splitter = splitter
        self.tracer = tracer
        self._trace_label = f"core{generator.master}"
        self._pending: List[Packet] = []
        self._reassembly: Dict[int, _Reassembly] = {}
        self.injected_packets = 0
        self.completed_requests = 0

    def tick(self, cycle: int) -> None:
        self._receive(cycle)
        self._generate(cycle)
        self._inject(cycle)

    # ------------------------------------------------------------------ #

    def _receive(self, cycle: int) -> None:
        while True:
            packet = self.sink.pop_complete()
            if packet is None:
                break
            request = packet.request
            assert request is not None and packet.is_response
            parent = request.parent_id if request.parent_id is not None else request.request_id
            tracker = self._reassembly.get(parent)
            if tracker is None:
                raise RuntimeError(f"response for unknown request {parent}")
            tracker.remaining -= 1
            if tracker.remaining == 0:
                original = tracker.original
                del self._reassembly[parent]
                self.stats.record_completion(
                    cycle,
                    original.issued_cycle,
                    original.master,
                    original.is_demand,
                )
                self.generator.on_complete(original.request_id, cycle)
                self.completed_requests += 1
                tracer = self.tracer
                if tracer:
                    tracer.emit(
                        EventType.COMPLETE,
                        cycle,
                        self._trace_label,
                        request_id=original.request_id,
                        latency=cycle - original.issued_cycle,
                        demand=original.is_demand,
                    )

    def _generate(self, cycle: int) -> None:
        for request in self.generator.generate(cycle):
            request.issued_cycle = cycle
            if self.splitter is not None:
                parts = self.splitter.split(request, self.request_ids)
            else:
                parts = [request]
            self._reassembly[request.request_id] = _Reassembly(request, len(parts))
            for part in parts:
                self._pending.append(
                    request_packet(
                        next(self.packet_ids), part, self.node, self.memory_node, cycle
                    )
                )

    def _inject(self, cycle: int) -> None:
        while self._pending:
            packet = self._pending[0]
            if not self.injection_buffer.can_inject(packet):
                break
            self.injection_buffer.push_complete(packet)
            self._pending.pop(0)
            self.injected_packets += 1
            tracer = self.tracer
            if tracer:
                request = packet.request
                tracer.emit(
                    EventType.INJECT,
                    cycle,
                    self._trace_label,
                    packet_id=packet.packet_id,
                    request_id=(
                        request.request_id if request is not None else None
                    ),
                    node=self.node,
                    dst=packet.dst,
                    flits=packet.size_flits,
                )

    @property
    def outstanding(self) -> int:
        return len(self._reassembly)


class MemoryInterface:
    """Slave-side NI wrapping the memory subsystem at the memory node."""

    def __init__(
        self,
        node: int,
        subsystem,
        sink: InputBuffer,
        injection_buffer: InputBuffer,
        master_nodes: Dict[int, int],
        packet_ids: Iterator[int],
        priority_responses: bool = False,
        tracer=None,
    ) -> None:
        """With ``priority_responses`` the NI injects ready responses for
        priority requests ahead of best-effort ones (the output buffer of
        Fig. 6 builds service packets; a QoS-aware NI dequeues priority
        data first).  Response reordering is safe: masters reassemble
        split responses by part count, not order."""
        self.node = node
        self.subsystem = subsystem
        self.sink = sink
        self.injection_buffer = injection_buffer
        self.master_nodes = master_nodes
        self.packet_ids = packet_ids
        self.priority_responses = priority_responses
        self.tracer = tracer
        self._trace_label = f"ni{node}"
        self._ready: List[Tuple[int, int, int, MemoryRequest]] = []  # heap
        self._sequence = count()
        self.admitted = 0
        self.responses_sent = 0

    def tick(self, cycle: int) -> None:
        self._admit(cycle)
        self.subsystem.tick(cycle)
        for finished in self.subsystem.drain_finished():
            ready = max(cycle + 1, finished.data_ready_cycle + 1)
            rank = (
                0 if self.priority_responses and finished.request.is_priority
                else 1
            )
            heapq.heappush(
                self._ready,
                (ready, rank, next(self._sequence), finished.request),
            )
        self._respond(cycle)

    def _admit(self, cycle: int) -> None:
        while True:
            head = self.sink.head()
            if head is None or head.claimed or not head.fully_received:
                break
            request = head.packet.request
            assert request is not None
            if not self.subsystem.can_accept(request):
                break
            self.sink.pop_complete()
            self.subsystem.enqueue(request, cycle)
            self.admitted += 1

    def _respond(self, cycle: int) -> None:
        if self.priority_responses:
            self._promote_ready_priority(cycle)
        while self._ready and self._ready[0][0] <= cycle:
            _, _, _, request = self._ready[0]
            dst = self.master_nodes[request.master]
            packet = response_packet(
                next(self.packet_ids), request, self.node, dst, cycle
            )
            if not self.injection_buffer.can_inject(packet):
                break
            heapq.heappop(self._ready)
            self.injection_buffer.push_complete(packet)
            self.responses_sent += 1
            tracer = self.tracer
            if tracer:
                tracer.emit(
                    EventType.INJECT,
                    cycle,
                    self._trace_label,
                    packet_id=packet.packet_id,
                    request_id=request.request_id,
                    node=self.node,
                    dst=dst,
                    flits=packet.size_flits,
                    side="memory",
                )

    def _promote_ready_priority(self, cycle: int) -> None:
        """Among responses whose data is ready, inject priority ones first
        (they would otherwise queue in ready-time order)."""
        ready_now = [item for item in self._ready if item[0] <= cycle]
        if not ready_now:
            return
        best = min(ready_now, key=lambda item: (item[1], item[0], item[2]))
        if best[1] == 0 and best is not self._ready[0]:
            self._ready.remove(best)
            heapq.heapify(self._ready)
            heapq.heappush(self._ready, (cycle, best[1], best[2], best[3]))

    @property
    def idle(self) -> bool:
        return (
            self.sink.head() is None
            and self.subsystem.idle
            and not self._ready
        )
