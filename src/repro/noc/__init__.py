"""NoC substrate: topology, routing, buffering, routers, and interfaces."""

from .buffers import InputBuffer
from .flow_control import (
    Candidate,
    DualFlowController,
    FlowController,
    MemoryFlowController,
    PriorityFirstFlowController,
    RoundRobinFlowController,
)
from .interface import CoreInterface, MemoryInterface, TrafficGenerator
from .network import MeshNetwork
from .packet import Packet, PacketKind, flits_for_beats, request_packet, response_packet
from .router import ControllerFactory, OutputPort, Router, Transfer
from .routing import RoutingPolicy, admissible_ports, route_path, xy_route
from .topology import Mesh, Mesh3D, Port

__all__ = [
    "Candidate",
    "ControllerFactory",
    "CoreInterface",
    "DualFlowController",
    "FlowController",
    "InputBuffer",
    "MemoryFlowController",
    "MemoryInterface",
    "Mesh",
    "Mesh3D",
    "MeshNetwork",
    "OutputPort",
    "Packet",
    "PacketKind",
    "Port",
    "PriorityFirstFlowController",
    "RoundRobinFlowController",
    "RoutingPolicy",
    "Router",
    "TrafficGenerator",
    "Transfer",
    "flits_for_beats",
    "request_packet",
    "response_packet",
    "admissible_ports",
    "route_path",
    "xy_route",
]
