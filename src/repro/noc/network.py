"""Mesh network container: routers, links, and local endpoints."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .buffers import InputBuffer
from .router import ControllerFactory, Router
from .routing import RoutingPolicy
from .topology import Mesh, Port


class MeshNetwork:
    """A wired 2-D mesh of routers.

    Every inter-router link connects node A's output port to the opposite
    input buffer of the neighbouring node B.  Each node additionally gets a
    *local sink* buffer — the downstream of its LOCAL output — from which
    the node's network interface (core NI or memory NI) consumes packets,
    and injects by delivering into the router's LOCAL input buffer.
    """

    def __init__(
        self,
        mesh: Mesh,
        controller_factory: ControllerFactory,
        buffer_flits: int = 64,
        sink_flits: Optional[Dict[int, Tuple[int, Optional[int]]]] = None,
        local_buffer_flits: Optional[int] = None,
        routing_policy: RoutingPolicy = RoutingPolicy.XY,
        virtual_channels: int = 1,
        tracer=None,
        fault_injector=None,
    ) -> None:
        """``sink_flits`` maps node -> (capacity_flits, max_packets) for
        that node's local sink — the memory node uses a shallow sink with
        few request slots so queueing stays in the routers, where priority
        packets can still overtake (Section IV-A)."""
        self.mesh = mesh
        self.routers: List[Router] = [
            Router(node, mesh, controller_factory, buffer_flits,
                   local_buffer_flits=local_buffer_flits,
                   routing_policy=routing_policy,
                   virtual_channels=virtual_channels,
                   tracer=tracer,
                   fault_injector=fault_injector)
            for node in mesh.nodes()
        ]
        self.local_sinks: Dict[int, InputBuffer] = {}
        # Active-router scan shared between is_idle() and tick() within
        # one cycle (invalidated by the tick that consumes it).
        self._active: List[Router] = []
        self._active_cycle = -1
        overrides = sink_flits or {}
        endpoint_flits = (
            local_buffer_flits if local_buffer_flits is not None else buffer_flits
        )
        for node in mesh.nodes():
            router = self.routers[node]
            for port in router.ports:
                if port is Port.LOCAL:
                    # Endpoint buffers (sinks) must hold a whole packet, so
                    # they follow the local size, not the link buffer size.
                    flits, slots = overrides.get(node, (endpoint_flits, None))
                    sink = InputBuffer(flits, max_packets=slots)
                    self.local_sinks[node] = sink
                    router.connect(port, sink)
                else:
                    neighbor = mesh.neighbor(node, port)
                    assert neighbor is not None
                    router.connect(
                        port,
                        self.routers[neighbor].input_lanes(Mesh.opposite(port)),
                    )

    def router(self, node: int) -> Router:
        return self.routers[node]

    def injection_buffer(self, node: int) -> InputBuffer:
        """Where a node's NI delivers outbound packets."""
        return self.routers[node].input_buffer(Port.LOCAL)

    def local_sink(self, node: int) -> InputBuffer:
        """Where a node's NI consumes inbound packets."""
        return self.local_sinks[node]

    def tick(self, cycle: int) -> None:
        """Two-phase cycle: all routers plan, then all routers commit,
        keeping per-hop latency one cycle regardless of iteration order.

        Only routers with resident packets or live transfers participate:
        for an idle router both phases are no-ops, and the active set is
        exact because planning never *adds* entries to another router's
        buffers (commit does, but a router that was idle at the cycle
        start had nothing to plan, so skipping its no-op phases is
        bit-identical).
        """
        if self._active_cycle == cycle:
            # Reuse the scan :meth:`is_idle` just did for this cycle (the
            # simulator checks idleness immediately before ticking).
            active = self._active
            self._active_cycle = -1
        else:
            active = [
                router for router in self.routers
                if router._entry_tally[0] and not router._asleep
            ]
        for router in active:
            router.plan(cycle)
        for router in active:
            router.commit(cycle)

    # Simulator idle-skip contract: the network is purely reactive — it
    # only moves packets the NIs inject — so it never self-wakes.

    def is_idle(self, cycle: int) -> bool:
        self._active = [
            router for router in self.routers
            if router._entry_tally[0] and not router._asleep
        ]
        self._active_cycle = cycle
        return not self._active

    def wake_at(self) -> Optional[int]:
        return None

    # ------------------------------------------------------------------ #
    # Event-dispatch contract
    # ------------------------------------------------------------------ #

    def event_wake_at(self, cycle: int) -> Optional[int]:
        """Tick again next cycle while any router holds packets; routers
        individually asleep are skipped inside :meth:`tick`, and a fully
        drained network sleeps until a producer wakes it through a router
        wake hook."""
        for router in self.routers:
            if router._entry_tally[0] and not router._asleep:
                return cycle + 1
        # Every resident router is asleep (head-of-line blocked): wake
        # hooks (flit arrivals / freed credits) re-arm us.
        return None

    def attach_wake(self, wake) -> None:
        for router in self.routers:
            router._net_wake = wake

    def __getstate__(self):
        # The active-router scan cache is intra-cycle state; drop it so a
        # restored network starts with a clean (and exact) rescan.
        state = self.__dict__.copy()
        state["_active"] = []
        state["_active_cycle"] = -1
        return state

    def on_run_mode(self, event_dispatch: bool) -> None:
        """Router sleep is an event-dispatch shortcut; the reference
        kernels (stepped/naive) must keep planning every non-empty router,
        so sleeping is switched off — and any stale sleep state cleared —
        when event dispatch is not active."""
        for router in self.routers:
            router._sleep_enabled = event_dispatch
            if not event_dispatch:
                router._asleep = False

    @property
    def in_flight_packets(self) -> int:
        """Packets stored in any router buffer or mid-transfer."""
        stored = sum(router.queued_packets for router in self.routers)
        transfers = sum(
            1
            for router in self.routers
            for output in router.outputs.values()
            if output.busy
        )
        sunk = sum(len(sink) for sink in self.local_sinks.values())
        return stored + transfers + sunk
