"""Mesh topologies (Fig. 7).

2-D meshes number nodes row-major (node ``y * width + x``); each router has
five ports — LOCAL plus the four compass directions — matching the paper's
``p = 5`` (Section IV-A).  :class:`Mesh3D` adds UP/DOWN for the paper's
``p = 7`` 3-D mesh case, layer-major (node ``z * width * height + y * width
+ x``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple


class Port(enum.IntEnum):
    LOCAL = 0
    NORTH = 1
    EAST = 2
    SOUTH = 3
    WEST = 4
    UP = 5      # 3-D meshes only (toward lower layer index)
    DOWN = 6    # 3-D meshes only (toward higher layer index)


#: Direction vectors (dx, dy) per port; LOCAL has no displacement.
_DELTAS = {
    Port.NORTH: (0, -1),
    Port.EAST: (1, 0),
    Port.SOUTH: (0, 1),
    Port.WEST: (-1, 0),
}

_OPPOSITE = {
    Port.NORTH: Port.SOUTH,
    Port.SOUTH: Port.NORTH,
    Port.EAST: Port.WEST,
    Port.WEST: Port.EAST,
    Port.UP: Port.DOWN,
    Port.DOWN: Port.UP,
}


@dataclass(frozen=True)
class Mesh:
    """A ``width`` x ``height`` mesh."""

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("mesh dimensions must be positive")

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    def nodes(self) -> Iterator[int]:
        return iter(range(self.num_nodes))

    def coordinates(self, node: int) -> Tuple[int, int]:
        self._check(node)
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"({x}, {y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def neighbor(self, node: int, port: Port) -> Optional[int]:
        """Node reached by leaving ``node`` through ``port`` (None if edge)."""
        if port is Port.LOCAL:
            return None
        x, y = self.coordinates(node)
        dx, dy = _DELTAS[port]
        nx, ny = x + dx, y + dy
        if 0 <= nx < self.width and 0 <= ny < self.height:
            return self.node_at(nx, ny)
        return None

    def ports(self, node: int) -> List[Port]:
        """All usable ports at ``node`` (LOCAL plus existing neighbors)."""
        usable = [Port.LOCAL]
        usable.extend(
            port for port in _DELTAS if self.neighbor(node, port) is not None
        )
        return usable

    @staticmethod
    def opposite(port: Port) -> Port:
        if port is Port.LOCAL:
            raise ValueError("LOCAL has no opposite port")
        return _OPPOSITE[port]

    def hop_distance(self, a: int, b: int) -> int:
        ax, ay = self.coordinates(a)
        bx, by = self.coordinates(b)
        return abs(ax - bx) + abs(ay - by)

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside mesh of {self.num_nodes}")


@dataclass(frozen=True)
class Mesh3D:
    """A ``width`` x ``height`` x ``depth`` mesh (p = 7 routers)."""

    width: int
    height: int
    depth: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0 or self.depth <= 0:
            raise ValueError("mesh dimensions must be positive")

    @property
    def num_nodes(self) -> int:
        return self.width * self.height * self.depth

    @property
    def layer_nodes(self) -> int:
        return self.width * self.height

    def nodes(self) -> Iterator[int]:
        return iter(range(self.num_nodes))

    def coordinates(self, node: int) -> Tuple[int, int, int]:
        self._check(node)
        layer, rest = divmod(node, self.layer_nodes)
        return rest % self.width, rest // self.width, layer

    def node_at(self, x: int, y: int, z: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height
                and 0 <= z < self.depth):
            raise ValueError(
                f"({x}, {y}, {z}) outside "
                f"{self.width}x{self.height}x{self.depth} mesh"
            )
        return z * self.layer_nodes + y * self.width + x

    def neighbor(self, node: int, port: Port) -> Optional[int]:
        if port is Port.LOCAL:
            return None
        x, y, z = self.coordinates(node)
        if port is Port.UP:
            return self.node_at(x, y, z - 1) if z > 0 else None
        if port is Port.DOWN:
            return self.node_at(x, y, z + 1) if z < self.depth - 1 else None
        dx, dy = _DELTAS[port]
        nx, ny = x + dx, y + dy
        if 0 <= nx < self.width and 0 <= ny < self.height:
            return self.node_at(nx, ny, z)
        return None

    def ports(self, node: int) -> List[Port]:
        usable = [Port.LOCAL]
        for port in (Port.NORTH, Port.EAST, Port.SOUTH, Port.WEST,
                     Port.UP, Port.DOWN):
            if self.neighbor(node, port) is not None:
                usable.append(port)
        return usable

    @staticmethod
    def opposite(port: Port) -> Port:
        return Mesh.opposite(port)

    def hop_distance(self, a: int, b: int) -> int:
        ax, ay, az = self.coordinates(a)
        bx, by, bz = self.coordinates(b)
        return abs(ax - bx) + abs(ay - by) + abs(az - bz)

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside mesh of {self.num_nodes}")
