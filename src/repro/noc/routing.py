"""Routing logics (Section IV-A).

The paper's experiments use deterministic XY routing — minimal,
deadlock-free, livelock-free — but note that "our GSS router can be
implemented to either deterministic or adaptive routers".  This module
provides both:

* :func:`xy_route` — dimension-ordered XY (the paper's configuration);
* :func:`admissible_ports` with ``RoutingPolicy.WEST_FIRST`` — minimal
  adaptive routing under the west-first turn model (Glass & Ni): westward
  movement must complete first, after which any minimal productive port is
  admissible, so the router can pick the least-congested one.  West-first
  prohibits the two turns into WEST, which breaks every cycle in the
  channel-dependency graph: deadlock-free; minimal: livelock-free.
"""

from __future__ import annotations

import enum
from typing import List, Tuple

from .topology import Mesh, Mesh3D, Port


class RoutingPolicy(enum.Enum):
    XY = "xy"
    WEST_FIRST = "west-first"


def xy_route(mesh, node: int, dst: int) -> Port:
    """Dimension-ordered route at ``node`` toward ``dst``.

    On a :class:`Mesh3D` this is XYZ routing: X, then Y, then Z — the same
    turn restrictions per plane, so equally deadlock/livelock free with
    the paper's p = 7 routers.
    """
    if node == dst:
        return Port.LOCAL
    if isinstance(mesh, Mesh3D):
        x, y, z = mesh.coordinates(node)
        dx, dy, dz = mesh.coordinates(dst)
        if x != dx:
            return Port.EAST if x < dx else Port.WEST
        if y != dy:
            return Port.SOUTH if y < dy else Port.NORTH
        return Port.DOWN if z < dz else Port.UP
    x, y = mesh.coordinates(node)
    dx, dy = mesh.coordinates(dst)
    if x < dx:
        return Port.EAST
    if x > dx:
        return Port.WEST
    return Port.SOUTH if y < dy else Port.NORTH


def admissible_ports(
    mesh: Mesh, node: int, dst: int, policy: RoutingPolicy = RoutingPolicy.XY
) -> List[Port]:
    """Minimal output ports a packet at ``node`` may take toward ``dst``.

    XY returns exactly one port; WEST_FIRST returns every minimal port the
    turn model admits (WEST exclusively while westward distance remains).
    """
    if node == dst:
        return [Port.LOCAL]
    if policy is RoutingPolicy.XY or isinstance(mesh, Mesh3D):
        # 3-D meshes use deterministic XYZ routing only.
        return [xy_route(mesh, node, dst)]
    x, y = mesh.coordinates(node)
    dx, dy = mesh.coordinates(dst)
    if dx < x:
        # West-first: all westward hops happen before anything else.
        return [Port.WEST]
    ports: List[Port] = []
    if dx > x:
        ports.append(Port.EAST)
    if dy > y:
        ports.append(Port.SOUTH)
    elif dy < y:
        ports.append(Port.NORTH)
    return ports


def build_route_table(
    mesh, node: int, policy: RoutingPolicy = RoutingPolicy.XY
) -> List[Tuple[Port, ...]]:
    """Admissible output ports from ``node`` to every destination, indexed
    by destination node id.

    Routing is static — it depends only on (mesh, node, dst, policy) — so
    routers precompute this table once and the per-packet hot path becomes
    a single list index instead of re-deriving coordinates and turn rules
    for every candidate every cycle.
    """
    return [
        tuple(admissible_ports(mesh, node, dst, policy))
        for dst in mesh.nodes()
    ]


def route_path(mesh: Mesh, src: int, dst: int):
    """Full XY path ``src`` -> ``dst`` as a node list (for tests/analysis)."""
    path = [src]
    node = src
    while node != dst:
        port = xy_route(mesh, node, dst)
        nxt = mesh.neighbor(node, port)
        if nxt is None:
            raise RuntimeError(f"XY routing fell off the mesh at node {node}")
        path.append(nxt)
        node = nxt
    return path
