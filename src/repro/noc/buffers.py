"""Wormhole input buffering with flit-granular credits.

A packet occupies an :class:`InputBuffer` as a :class:`FlitEntry` whose
flits stream in from the upstream link (1 flit/cycle) and stream out to the
next link, possibly concurrently (cut-through): ``received`` counts flits
committed into the buffer, ``sent`` counts flits already forwarded.  The
buffer is in-order — only the head entry may be forwarded — matching the
paper's wormhole input buffers, and occupancy (``received - sent`` summed
over entries) is bounded by the capacity in flits, which is the credit the
upstream output scheduler checks before moving a flit.

Entries become arbitration candidates as soon as their head flit is
present; a 64-BL enhancer packet therefore pipelines across hops instead of
being stored and forwarded, while still monopolizing each channel it holds
under winner-take-all allocation.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from ..sim.engine import is_engine_wake
from .packet import Packet


class FlitEntry:
    """One packet's presence in a buffer (possibly partially arrived)."""

    __slots__ = ("packet", "received", "sent", "claimed", "retiring")

    def __init__(self, packet: Packet, received: int = 0) -> None:
        self.packet = packet
        self.received = received
        self.sent = 0
        self.claimed = False   # an output transfer owns this entry
        self.retiring = False  # its final flit is planned to move this cycle

    @property
    def resident_flits(self) -> int:
        return self.received - self.sent

    @property
    def fully_received(self) -> bool:
        return self.received >= self.packet.size_flits

    @property
    def fully_sent(self) -> bool:
        return self.sent >= self.packet.size_flits

    def __repr__(self) -> str:
        return (
            f"FlitEntry({self.packet}, received={self.received}, "
            f"sent={self.sent}, claimed={self.claimed})"
        )


class InputBuffer:
    """Bounded in-order wormhole buffer (one writer, one reader)."""

    def __init__(self, capacity_flits: int, max_packets: Optional[int] = None) -> None:
        """``max_packets`` additionally bounds how many packets may occupy
        the buffer at once (a request-queue depth, as in a slave NI)."""
        if capacity_flits <= 0:
            raise ValueError("capacity must be positive")
        if max_packets is not None and max_packets <= 0:
            raise ValueError("max_packets must be positive")
        self.capacity_flits = capacity_flits
        self.max_packets = max_packets
        self.entries: Deque[FlitEntry] = deque()
        self._arrivals: List[Packet] = []
        self._reserved_slots = 0
        #: Optional shared occupancy cell (a one-element int list) the
        #: owning router installs across its input buffers, so its idle
        #: check is O(1) instead of a scan over every lane's entries.
        self.entry_tally: Optional[List[int]] = None
        # Resident flits, maintained incrementally: every mutation of an
        # entry's received/sent counters goes through this buffer, so the
        # hot-path credit checks are O(1) instead of a sum over entries.
        self._occupancy = 0
        #: Highest flit occupancy ever reached (telemetry): queue depth at
        #: the congested memory funnel, not just flit throughput.
        self.highwater_flits = 0
        #: Event-dispatch hooks (installed by the owning components, None
        #: when unused): ``wake_consumer`` fires when new data lands here
        #: (a flit commits or an entry opens); ``wake_credit`` fires when
        #: room frees up (a flit leaves or a packet slot is released).
        #: Call sites in the router hot path invoke them inline.
        self.wake_consumer = None
        self.wake_credit = None
        #: When the wake hook target is a router, the router itself — the
        #: network commit loop then clears its sleep flag directly instead
        #: of running the full hook → engine-wake chain: during a network
        #: tick the engine re-arms the network from ``event_wake_at``
        #: anyway, so only the sleep flag matters (NI-facing buffers leave
        #: these None and keep the full hooks).
        self.consumer_router = None
        self.credit_router = None

    def __getstate__(self):
        """Router-owned hooks (bound methods) pickle by reference; engine
        wake closures installed by an NI's ``attach_wake`` do not, and are
        dropped here — simulator rebind reinstalls them on restore."""
        state = self.__dict__.copy()
        if is_engine_wake(state.get("wake_consumer")):
            state["wake_consumer"] = None
        if is_engine_wake(state.get("wake_credit")):
            state["wake_credit"] = None
        return state

    # ------------------------------------------------------------------ #
    # Upstream (writer) side
    # ------------------------------------------------------------------ #

    @property
    def occupancy_flits(self) -> int:
        return self._occupancy

    @property
    def free_flits(self) -> int:
        return self.capacity_flits - self.occupancy_flits

    def has_credit(self) -> bool:
        """May the upstream link commit one more flit here?"""
        return self._occupancy < self.capacity_flits

    def can_open_entry(self) -> bool:
        """May a new packet begin arriving (flit credit + packet slot)?"""
        if (
            self.max_packets is not None
            and len(self.entries) + self._reserved_slots >= self.max_packets
        ):
            return False
        return self.has_credit()

    def reserve_slot(self) -> None:
        """Claim a packet slot at arbitration time (consumed by the
        matching :meth:`open_entry` when the first flit commits)."""
        if not self.can_open_entry():
            raise RuntimeError("slot reservation without a free slot")
        self._reserved_slots += 1

    def open_entry(self, packet: Packet) -> FlitEntry:
        """Start receiving ``packet`` (wormhole: head flit not yet here)."""
        if self._reserved_slots > 0:
            self._reserved_slots -= 1
        elif self.max_packets is not None and len(self.entries) >= self.max_packets:
            raise RuntimeError("packet slots exhausted")
        entry = FlitEntry(packet)
        self.entries.append(entry)
        self._arrivals.append(packet)
        tally = self.entry_tally
        if tally is not None:
            tally[0] += 1
        return entry

    def commit_flit(self, entry: FlitEntry) -> None:
        """One flit of ``entry`` arrived (end-of-cycle commit)."""
        if entry.fully_received:
            raise RuntimeError("flit committed past end of packet")
        occupancy = self._occupancy
        if occupancy >= self.capacity_flits:
            raise RuntimeError("flit committed without credit")
        entry.received += 1
        occupancy += 1
        self._occupancy = occupancy
        if occupancy > self.highwater_flits:
            self.highwater_flits = occupancy
        wake = self.wake_consumer
        if wake is not None:
            wake()

    def send_flit(self, entry: FlitEntry) -> None:
        """One flit of ``entry`` left for the downstream link (frees the
        credit the upstream scheduler checks via :meth:`has_credit`)."""
        if entry.fully_sent:
            raise RuntimeError("flit sent past end of packet")
        entry.sent += 1
        self._occupancy -= 1
        wake = self.wake_credit
        if wake is not None:
            wake()

    def push_complete(self, packet: Packet) -> None:
        """Inject a whole packet at once (local NI injection)."""
        occupancy = self._occupancy
        if self.capacity_flits - occupancy < packet.size_flits:
            raise RuntimeError("injection without room for the whole packet")
        occupancy += packet.size_flits
        self._occupancy = occupancy
        if occupancy > self.highwater_flits:
            self.highwater_flits = occupancy
        entry = FlitEntry(packet, received=packet.size_flits)
        self.entries.append(entry)
        self._arrivals.append(packet)
        tally = self.entry_tally
        if tally is not None:
            tally[0] += 1
        wake = self.wake_consumer
        if wake is not None:
            wake()

    def can_inject(self, packet: Packet) -> bool:
        if (
            self.max_packets is not None
            and len(self.entries) + self._reserved_slots >= self.max_packets
        ):
            return False
        return self.capacity_flits - self._occupancy >= packet.size_flits

    # ------------------------------------------------------------------ #
    # Downstream (reader) side
    # ------------------------------------------------------------------ #

    def head(self) -> Optional[FlitEntry]:
        return self.entries[0] if self.entries else None

    def head_candidate(self) -> Optional[FlitEntry]:
        """The first arbitratable entry: head flit present, not owned by a
        transfer.  When the head's final flit is already planned to depart
        this cycle (``retiring``), the entry behind it is exposed — the way
        a real router presents the next packet as the tail flit leaves, so
        short packets chain without a bubble per hop."""
        if not self.entries:
            return None
        head = self.entries[0]
        if head.claimed:
            if not head.retiring or len(self.entries) < 2:
                return None
            head = self.entries[1]
            if head.claimed:
                return None
        if head.received < 1:
            return None
        return head

    def retire_head(self) -> Packet:
        """Remove the fully-forwarded head entry."""
        head = self.head()
        if head is None or not head.fully_sent:
            raise RuntimeError("retiring an unfinished head entry")
        self.entries.popleft()
        tally = self.entry_tally
        if tally is not None:
            tally[0] -= 1
        # Only a packet *slot* frees here (flit credits were signalled as
        # each flit left), so uncapped buffers skip the wake entirely.
        if self.max_packets is not None:
            wake = self.wake_credit
            if wake is not None:
                wake()
        return head.packet

    def pop_complete(self) -> Optional[Packet]:
        """Consume the head packet if fully received (local NI ejection)."""
        head = self.head()
        if head is None or head.claimed or not head.fully_received:
            return None
        self.entries.popleft()
        self._occupancy -= head.received - head.sent
        tally = self.entry_tally
        if tally is not None:
            tally[0] -= 1
        wake = self.wake_credit
        if wake is not None:
            wake()
        return head.packet

    def drain_arrivals(self) -> List[Packet]:
        """Packets whose head entered since the last drain (token hooks)."""
        arrivals, self._arrivals = self._arrivals, []
        return arrivals

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)
