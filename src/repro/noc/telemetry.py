"""NoC telemetry: per-link utilization and hotspot reporting.

Routers already count flits per output channel; this module turns those
counters into a link-utilization map and a per-node summary — the view a
NoC designer uses to find the congested column-0 funnel toward the memory
corner (and to check that GSS deployment shifted it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .network import MeshNetwork
from .topology import Port


@dataclass(frozen=True)
class LinkStats:
    """Activity of one output channel over a run."""

    node: int
    port: Port
    packets: int
    flits: int
    utilization: float  # flits per cycle (link capacity = 1)


def link_stats(network: MeshNetwork, cycles: int) -> List[LinkStats]:
    """Per-output-channel statistics after a run of ``cycles`` cycles."""
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    stats: List[LinkStats] = []
    for router in network.routers:
        for port, output in router.outputs.items():
            stats.append(
                LinkStats(
                    node=router.node,
                    port=port,
                    packets=output.packets_sent,
                    flits=output.flits_sent,
                    utilization=output.flits_sent / cycles,
                )
            )
    return stats


def hottest_links(
    network: MeshNetwork, cycles: int, top: int = 5
) -> List[LinkStats]:
    """The ``top`` busiest channels (the memory funnel, usually).

    Ties break deterministically by (node, port name) so reports are
    stable across runs and Python versions.
    """
    if top <= 0:
        raise ValueError("top must be positive")
    ordered = sorted(
        link_stats(network, cycles),
        key=lambda s: (-s.flits, s.node, s.port.name),
    )
    return ordered[:top]


def buffer_highwater(network: MeshNetwork) -> Dict[Tuple[int, str, int], int]:
    """Per-input-buffer flit high-water marks, keyed (node, port, lane).

    High-water is the peak *occupancy* a buffer ever reached — the queue
    depth a designer would size the buffer to, which flit throughput alone
    does not reveal."""
    marks: Dict[Tuple[int, str, int], int] = {}
    for router in network.routers:
        for port, lanes in router.inputs.items():
            for lane, buffer in enumerate(lanes):
                marks[(router.node, port.name, lane)] = buffer.highwater_flits
    return marks


def register_metrics(network: MeshNetwork, registry, cycles: int) -> None:
    """Publish NoC counters into a :class:`~repro.obs.metrics.MetricsRegistry`.

    Registers per-output flit/packet counters (``noc.link.*``) and
    per-input-buffer high-water gauges (``noc.buffer.highwater.*``).
    """
    for stat in link_stats(network, cycles):
        label = f"{stat.node}.{stat.port.name.lower()}"
        registry.counter(f"noc.link.flits.{label}").inc(stat.flits)
        registry.counter(f"noc.link.packets.{label}").inc(stat.packets)
    for (node, port, lane), mark in buffer_highwater(network).items():
        registry.gauge(
            f"noc.buffer.highwater.{node}.{port.lower()}.{lane}"
        ).set(mark)


def node_throughput(network: MeshNetwork, cycles: int) -> Dict[int, float]:
    """Total flits per cycle forwarded by each router."""
    totals: Dict[int, float] = {}
    for stat in link_stats(network, cycles):
        totals[stat.node] = totals.get(stat.node, 0.0) + stat.utilization
    return totals


def render_link_report(network: MeshNetwork, cycles: int, top: int = 8) -> str:
    """Text report of the busiest links plus per-node totals."""
    lines = [f"{'link':>14s} {'packets':>8s} {'flits':>8s} {'util':>6s}"]
    for stat in hottest_links(network, cycles, top=top):
        lines.append(
            f"{stat.node:>4d}.{stat.port.name:<9s} {stat.packets:>8d} "
            f"{stat.flits:>8d} {stat.utilization:6.2f}"
        )
    lines.append("")
    lines.append("per-node forwarded flits/cycle:")
    totals = node_throughput(network, cycles)
    for node in sorted(totals):
        lines.append(f"  node {node:>2d}: {totals[node]:5.2f}")
    return "\n".join(lines)
