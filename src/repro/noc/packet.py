"""NoC packets.

Packets carry either a memory request toward the memory subsystem or a
memory response (read data / write acknowledge) back to the master.  Per
Section IV-C, request/response packets in the paper's OCP-style NoC consist
of body flits only (routing information travels on sideband wires), so a
packet's cost on a link is just its payload flits:

* read request — 1 flit (the command/address beat);
* write request — one flit per data-bus cycle of payload (2 beats/flit);
* read response — one flit per data-bus cycle of data;
* write acknowledge — 1 flit.

One flit therefore equals one data-bus clock cycle of SDRAM bandwidth, so
the network and memory have matched peak bandwidth, as in the paper's
testbed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..dram.request import MemoryRequest, ServiceClass


class PacketKind(enum.Enum):
    REQUEST = "request"
    RESPONSE = "response"


def flits_for_beats(beats: int) -> int:
    """Payload flits to carry ``beats`` data beats (2 beats per flit)."""
    if beats < 0:
        raise ValueError("beats must be non-negative")
    return max(1, (beats + 1) // 2)


@dataclass(slots=True)
class Packet:
    """One wormhole packet (sized in flits).

    ``slots=True``: packets are allocated per request part per hop-chain —
    one of the highest-volume objects in a run — so slot storage cuts both
    per-instance memory and attribute-access time in the router hot path.
    """

    packet_id: int
    kind: PacketKind
    src: int
    dst: int
    size_flits: int
    created_cycle: int
    request: Optional[MemoryRequest] = None
    #: Set by the fault injector: the packet's CRC will fail at the
    #: endpoint NI, which discards it and triggers retransmission (see
    #: :mod:`repro.resilience`).  ``fault_bits`` counts the individual
    #: faults that hit this packet instance, for the fault ledger.
    corrupted: bool = False
    fault_bits: int = 0
    #: Cached classification bits.  ``kind`` and ``request.service`` never
    #: change after construction, and both predicates are read on every
    #: arbitration of every hop — plain slot reads instead of property
    #: calls keep them off the router's hot-path profile.
    is_memory_request: bool = field(init=False, repr=False)
    is_priority: bool = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.size_flits <= 0:
            raise ValueError("packet must contain at least one flit")
        if self.kind is PacketKind.REQUEST and self.request is None:
            raise ValueError("request packets must carry a MemoryRequest")
        self.is_memory_request = self.kind is PacketKind.REQUEST
        self.is_priority = (
            self.request is not None
            and self.request.service is ServiceClass.PRIORITY
        )

    @property
    def is_response(self) -> bool:
        return self.kind is PacketKind.RESPONSE

    def __str__(self) -> str:
        tag = "REQ" if self.is_memory_request else "RSP"
        pri = "/P" if self.is_priority else ""
        return f"pkt#{self.packet_id}{tag}{pri} {self.src}->{self.dst} x{self.size_flits}"


def request_packet(
    packet_id: int,
    request: MemoryRequest,
    src: int,
    dst: int,
    cycle: int,
) -> Packet:
    """Build the request packet for ``request`` (Section IV-C sizing)."""
    size = flits_for_beats(request.beats) if request.is_write else 1
    return Packet(
        packet_id=packet_id,
        kind=PacketKind.REQUEST,
        src=src,
        dst=dst,
        size_flits=size,
        created_cycle=cycle,
        request=request,
    )


def response_packet(
    packet_id: int,
    request: MemoryRequest,
    src: int,
    dst: int,
    cycle: int,
) -> Packet:
    """Build the response for ``request``: read data or a write acknowledge."""
    size = flits_for_beats(request.beats) if request.is_read else 1
    return Packet(
        packet_id=packet_id,
        kind=PacketKind.RESPONSE,
        src=src,
        dst=dst,
        size_flits=size,
        created_cycle=cycle,
        request=request,
    )
