"""Flow-controller interface and the conventional controllers.

A flow controller arbitrates, for one output channel, among the head
packets of the input buffers that want that channel (winner-take-all
bandwidth allocation [22]: the winner holds the channel until its last flit
has left).  Three conventional policies appear in the paper's comparisons:

* :class:`RoundRobinFlowController` — the CONV router;
* :class:`PriorityFirstFlowController` — priority-first service (PFS),
  used in the CONV+PFS and [4]+PFS configurations and in Fig. 8's
  non-GSS routers;
* :class:`DualFlowController` — the parallel split of Fig. 3: an
  SDRAM-scheduling controller handles memory-request packets, and its
  winner then competes with normal packets under a conventional policy so
  normal traffic sees no added delay.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from .packet import Packet
from .topology import Port

#: An arbitration candidate: (input port it sits in, the packet).
Candidate = Tuple[Port, Packet]


class FlowController:
    """Arbitration policy for one output channel."""

    def on_arrival(self, port: Port, packet: Packet, cycle: int) -> None:
        """A packet bound for this output was delivered into ``port``."""

    def pick(self, candidates: Sequence[Candidate], cycle: int) -> Optional[Candidate]:
        """Choose the next packet to own the channel (None = stay idle)."""
        raise NotImplementedError

    def on_scheduled(self, port: Port, packet: Packet, cycle: int) -> None:
        """``packet`` won arbitration and starts transferring."""

    def on_delivered(self, packet: Packet, cycle: int) -> None:
        """``packet``'s last flit left this router (transfer complete)."""

    def on_withdrawn(self, packet: Packet, cycle: int) -> None:
        """``packet`` was claimed by a *different* output channel (adaptive
        routing offered it to several); drop any state held for it."""

    # --- introspection (invariant checking) --------------------------- #

    def tracked_packet_ids(self) -> Optional[Set[int]]:
        """Ids of the packets this controller holds state for, or ``None``
        for stateless policies (see
        :class:`repro.resilience.invariants.InvariantChecker`)."""
        return None

    def token_counts(self) -> Iterable[Tuple[int, Packet]]:
        """``(tokens, packet)`` pairs for token-carrying controllers."""
        return ()


class RoundRobinFlowController(FlowController):
    """Port-rotating round-robin (the conventional router's policy)."""

    def __init__(self) -> None:
        self._next_port = 0

    def pick(self, candidates: Sequence[Candidate], cycle: int) -> Optional[Candidate]:
        if not candidates:
            return None
        if len(candidates) == 1:
            # Uncontended channel: rotation cannot change the outcome.
            return candidates[0]
        ordered = sorted(candidates, key=lambda c: (c[0] - self._next_port) % 8)
        return ordered[0]

    def on_scheduled(self, port: Port, packet: Packet, cycle: int) -> None:
        self._next_port = (int(port) + 1) % 8


class PriorityFirstFlowController(RoundRobinFlowController):
    """Priority packets strictly first (oldest wins); round-robin otherwise.

    This is the paper's PFS: it minimizes priority latency with *no*
    consideration of SDRAM state, which is exactly why it costs utilization
    (Fig. 1(c), Table II).
    """

    def pick(self, candidates: Sequence[Candidate], cycle: int) -> Optional[Candidate]:
        if len(candidates) == 1:
            # Sole candidate wins whether or not it carries priority.
            return candidates[0]
        priority = [c for c in candidates if c[1].is_priority]
        if priority:
            return min(priority, key=lambda c: c[1].created_cycle)
        return super().pick(candidates, cycle)


class MemoryFlowController(FlowController):
    """Interface tag for controllers that schedule memory-request packets
    (the GSS flow controller and the SDRAM-aware [4] flow controller)."""


class DualFlowController(FlowController):
    """Fig. 3's parallel organization: an address parser steers memory
    request packets to a memory scheduler, normal packets to a conventional
    arbiter, and the two winners compete under the conventional policy."""

    def __init__(
        self,
        memory_controller: MemoryFlowController,
        normal_controller: Optional[FlowController] = None,
    ) -> None:
        self.memory = memory_controller
        self.normal = normal_controller or RoundRobinFlowController()

    def on_arrival(self, port: Port, packet: Packet, cycle: int) -> None:
        if packet.is_memory_request:
            self.memory.on_arrival(port, packet, cycle)
        else:
            self.normal.on_arrival(port, packet, cycle)

    def pick(self, candidates: Sequence[Candidate], cycle: int) -> Optional[Candidate]:
        if len(candidates) == 1:
            # Sole candidate: the final conventional round among
            # {memory winner} / {the normal packet} is a formality, but
            # the memory scheduler must still vet (and may refuse) it.
            if candidates[0][1].is_memory_request:
                return self.memory.pick(candidates, cycle)
            return self.normal.pick(candidates, cycle)
        requests = [c for c in candidates if c[1].is_memory_request]
        normals = [c for c in candidates if not c[1].is_memory_request]
        finalists: List[Candidate] = list(normals)
        if requests:
            winner = self.memory.pick(requests, cycle)
            if winner is not None:
                finalists.append(winner)
        if not finalists:
            return None
        return self.normal.pick(finalists, cycle)

    def on_scheduled(self, port: Port, packet: Packet, cycle: int) -> None:
        if packet.is_memory_request:
            self.memory.on_scheduled(port, packet, cycle)
        self.normal.on_scheduled(port, packet, cycle)

    def on_delivered(self, packet: Packet, cycle: int) -> None:
        if packet.is_memory_request:
            self.memory.on_delivered(packet, cycle)
        else:
            self.normal.on_delivered(packet, cycle)

    def on_withdrawn(self, packet: Packet, cycle: int) -> None:
        if packet.is_memory_request:
            self.memory.on_withdrawn(packet, cycle)
        else:
            self.normal.on_withdrawn(packet, cycle)

    def tracked_packet_ids(self) -> Optional[Set[int]]:
        return self.memory.tracked_packet_ids()

    def token_counts(self) -> Iterable[Tuple[int, Packet]]:
        return self.memory.token_counts()
