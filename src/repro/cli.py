"""Command-line interface: run configurations and regenerate exhibits.

Examples::

    python -m repro run --app bluray --design gss+sagm --priority
    python -m repro run --percentiles
    python -m repro trace --cycles 5000 -o trace.json
    python -m repro profile --window 1000
    python -m repro table1 --cycles 12000
    python -m repro fig8 --max-routers 5
    python -m repro table4
    python -m repro all --cycles 8000
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .core.system import build_system
from .experiments import fig8, table1, table2, table3, table4, table5
from .sim.config import DdrGeneration, NocDesign, SystemConfig


def _design(value: str) -> NocDesign:
    for design in NocDesign:
        if design.value == value:
            return design
    raise argparse.ArgumentTypeError(
        f"unknown design {value!r}; choose from "
        f"{[d.value for d in NocDesign]}"
    )


def _ddr(value: str) -> DdrGeneration:
    for generation in DdrGeneration:
        if generation.value == value:
            return generation
    raise argparse.ArgumentTypeError(f"unknown DDR generation {value!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Application-aware NoC design for efficient SDRAM access "
            "(Jang & Pan, DAC 2010) — simulation and experiment driver"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one configuration")
    _add_config_args(run)
    run.add_argument(
        "--percentiles", action="store_true",
        help="also report p50/p95/p99 latency (keeps per-request samples)",
    )

    faults = sub.add_parser(
        "faults",
        help="fault-injection sweep: utilization/latency vs fault rate, "
        "with the full fault ledger (exits nonzero on hung requests or "
        "unaccounted faults)",
    )
    faults.add_argument(
        "--rates", type=float, nargs="+", default=None, metavar="RATE",
        help="uniform fault rates to sweep (default: 0 1e-4 1e-3 1e-2)",
    )
    faults.add_argument("--app", default="single_dtv")
    faults.add_argument("--cycles", type=int, default=None)
    faults.add_argument("--warmup", type=int, default=None)
    faults.add_argument("--seed", type=int, default=2010)

    trace = sub.add_parser(
        "trace",
        help="simulate one configuration with packet-lifecycle tracing",
    )
    _add_config_args(trace, default_cycles=5_000, default_warmup=0)
    trace.add_argument(
        "-o", "--output", default="trace.json", metavar="PATH",
        help="Chrome trace-event JSON output (load in Perfetto / "
        "chrome://tracing)",
    )
    trace.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="also dump raw events as JSON Lines",
    )
    trace.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="cap recorded events (overflow is counted, not silent)",
    )
    trace.add_argument(
        "--slowest", type=int, default=8, metavar="N",
        help="slowest requests listed in the latency breakdown",
    )

    profile = sub.add_parser(
        "profile",
        help="simulate one configuration and profile simulator wall-time",
    )
    _add_config_args(profile, default_cycles=20_000, default_warmup=0)
    profile.add_argument(
        "--window", type=int, default=1_000, metavar="CYCLES",
        help="profiling window size in cycles",
    )
    profile.add_argument(
        "--windows", type=int, default=3, metavar="N",
        help="most expensive windows to list",
    )

    for name, module in [
        ("table1", table1), ("table2", table2), ("table3", table3),
    ]:
        exhibit = sub.add_parser(name, help=f"regenerate {name}")
        exhibit.add_argument("--cycles", type=int, default=None)
        exhibit.add_argument("--warmup", type=int, default=None)
        exhibit.add_argument("--seeds", type=int, nargs="+", default=None)

    sub.add_parser("table4", help="regenerate Table IV (gate counts)")
    sub.add_parser("table5", help="regenerate Table V (power)")

    fig = sub.add_parser("fig8", help="regenerate Fig. 8 (GSS router sweep)")
    fig.add_argument("--cycles", type=int, default=None)
    fig.add_argument("--warmup", type=int, default=None)
    fig.add_argument("--seeds", type=int, nargs="+", default=None)
    fig.add_argument("--max-routers", type=int, default=None)

    everything = sub.add_parser("all", help="regenerate every exhibit")
    everything.add_argument("--cycles", type=int, default=None)
    everything.add_argument("--warmup", type=int, default=None)
    everything.add_argument("--seeds", type=int, nargs="+", default=None)

    export = sub.add_parser(
        "export", help="run every exhibit and write results as JSON"
    )
    export.add_argument("output", help="path of the JSON document to write")
    export.add_argument("--cycles", type=int, default=None)
    export.add_argument("--warmup", type=int, default=None)
    export.add_argument("--seeds", type=int, nargs="+", default=None)

    bench_cmd = sub.add_parser(
        "bench", help="run the standing simulator benchmarks"
    )
    bench_cmd.add_argument("--cycles", type=int, default=None)
    bench_cmd.add_argument("--reps", type=int, default=None)
    bench_cmd.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the measured point as a trajectory JSON file",
    )
    bench_cmd.add_argument(
        "--check", metavar="TRAJECTORY", default=None,
        help="compare against a recorded BENCH_*.json; exit 1 if any "
        "benchmark regressed more than --max-regression",
    )
    bench_cmd.add_argument(
        "--max-regression", type=float, default=0.2,
        help="allowed calibration-scaled cycles/sec drop (default 0.2)",
    )

    return parser


def _add_config_args(
    parser: argparse.ArgumentParser,
    default_cycles: int = 20_000,
    default_warmup: int = 3_000,
) -> None:
    """The shared single-configuration flags (run / trace / profile)."""
    parser.add_argument("--app", default="single_dtv")
    parser.add_argument("--design", type=_design, default=NocDesign.GSS_SAGM)
    parser.add_argument("--ddr", type=_ddr, default=DdrGeneration.DDR2)
    parser.add_argument("--clock", type=int, default=333, metavar="MHZ")
    parser.add_argument("--cycles", type=int, default=default_cycles)
    parser.add_argument("--warmup", type=int, default=default_warmup)
    parser.add_argument("--seed", type=int, default=2010)
    parser.add_argument("--pct", type=int, default=5)
    parser.add_argument("--priority", action="store_true")
    parser.add_argument("--sti", action="store_true")
    parser.add_argument("--adaptive", action="store_true")
    parser.add_argument("--gss-routers", type=int, default=None)
    parser.add_argument(
        "--vcs", type=int, default=1,
        help="virtual channels per link (2 adds a priority lane)",
    )
    parser.add_argument(
        "--link-buffers", type=int, default=12, metavar="FLITS"
    )
    parser.add_argument(
        "--fault-rate", type=float, default=0.0, metavar="RATE",
        help="uniform fault-injection rate (0 builds no resilience "
        "machinery at all; see repro.resilience)",
    )
    parser.add_argument(
        "--check-invariants", action="store_true",
        help="attach the live invariant checker (credit/token "
        "conservation, packet-age bound)",
    )


def _config_from(args) -> SystemConfig:
    faults = None
    if getattr(args, "fault_rate", 0.0) > 0.0:
        from .resilience import FaultConfig

        faults = FaultConfig.uniform(args.fault_rate)
    return SystemConfig(
        app=args.app,
        design=args.design,
        ddr=args.ddr,
        clock_mhz=args.clock,
        cycles=args.cycles,
        warmup=args.warmup,
        seed=args.seed,
        pct=args.pct,
        priority_enabled=args.priority,
        sti=args.sti,
        adaptive_routing=args.adaptive,
        num_gss_routers=args.gss_routers,
        virtual_channels=args.vcs,
        link_buffer_flits=args.link_buffers,
        faults=faults,
        check_invariants=getattr(args, "check_invariants", False),
    )


def _seeds(args) -> dict:
    kwargs = {}
    if getattr(args, "cycles", None) is not None:
        kwargs["cycles"] = args.cycles
    if getattr(args, "warmup", None) is not None:
        kwargs["warmup"] = args.warmup
    if getattr(args, "seeds", None) is not None:
        kwargs["seeds"] = tuple(args.seeds)
    return kwargs


def _cmd_run(args) -> None:
    config = _config_from(args)
    started = time.time()
    system = build_system(config, keep_samples=args.percentiles)
    metrics = system.run()
    elapsed = time.time() - started
    print(f"configuration : {config.label}")
    print(f"cycles        : {metrics.cycles} ({elapsed:.1f}s wall)")
    print(f"utilization   : {metrics.utilization:.3f} "
          f"(bus occupancy {metrics.raw_utilization:.3f})")
    print(f"latency (all) : {metrics.latency_all:.1f} cycles")
    print(f"latency (dem) : {metrics.latency_demand:.1f} cycles")
    print(f"row-hit rate  : {metrics.row_hit_rate:.2f}")
    print(f"completed     : {metrics.completed} requests")
    if args.percentiles:
        series = system.stats.all_packets
        if series.count:
            print(
                "percentiles   : "
                f"p50={series.percentile(50):.0f} "
                f"p95={series.percentile(95):.0f} "
                f"p99={series.percentile(99):.0f} cycles"
            )
        else:
            print("percentiles   : n/a (no completed requests)")
    if system.resilience is not None:
        quiesced = system.drain()
        controller = system.resilience
        print(
            "faults        : "
            f"injected={controller.injected_total} "
            f"corrected={controller.corrected} "
            f"recovered={controller.recovered} "
            f"failed={controller.failed_faults} "
            f"unresolved={controller.unresolved}"
        )
        print(
            "recovery      : "
            f"crc_retries={controller.crc_retries} "
            f"dram_rereads={controller.dram_reread_count} "
            f"watchdog={controller.watchdog_reissues} "
            f"failed_requests={controller.failed_requests}"
        )
        if not quiesced:
            print("WARNING       : system did not drain to quiescence",
                  file=sys.stderr)


def _cmd_trace(args) -> None:
    from .obs import MemoryTracer
    from .obs.exporters import (
        render_latency_report,
        write_chrome_trace,
        write_jsonl,
    )

    config = _config_from(args)
    tracer = MemoryTracer(limit=args.limit)
    system = build_system(config, tracer=tracer)
    metrics = system.run()
    print(f"configuration : {config.label}")
    print(f"cycles        : {metrics.cycles}")
    counts = tracer.counts()
    summary = "  ".join(f"{name}={counts[name]}" for name in sorted(counts))
    print(f"events        : {len(tracer)}  ({summary})")
    if tracer.dropped:
        print(f"dropped       : {tracer.dropped} (over --limit)")
    write_chrome_trace(tracer.events, args.output)
    print(f"chrome trace  : {args.output} (open in https://ui.perfetto.dev)")
    if args.jsonl:
        write_jsonl(tracer.events, args.jsonl)
        print(f"jsonl dump    : {args.jsonl}")
    print()
    print(render_latency_report(tracer.events, slowest=args.slowest))


def _cmd_faults(args) -> int:
    from .experiments import fault_sweep

    kwargs = dict(seed=args.seed, app=args.app)
    if args.rates is not None:
        kwargs["rates"] = tuple(args.rates)
    if args.cycles is not None:
        kwargs["cycles"] = args.cycles
    if args.warmup is not None:
        kwargs["warmup"] = args.warmup
    points = fault_sweep.run_fault_sweep(**kwargs)
    print(fault_sweep.render(points))
    hung = [p for p in points if not p.quiesced]
    unaccounted = [p for p in points if not p.accounted]
    if hung:
        print(f"FAIL: {len(hung)} sweep point(s) did not drain "
              f"(hung requests)", file=sys.stderr)
    if unaccounted:
        print(f"FAIL: {len(unaccounted)} sweep point(s) left injected "
              f"faults unaccounted", file=sys.stderr)
    return 1 if hung or unaccounted else 0


def _cmd_profile(args) -> None:
    from .obs import SimulatorProfiler

    config = _config_from(args)
    profiler = SimulatorProfiler(window_cycles=args.window)
    system = build_system(config)
    system.simulator.attach_profiler(profiler)
    metrics = system.run()
    print(f"configuration : {config.label}")
    print(f"cycles        : {metrics.cycles}")
    print()
    print(profiler.report(windows=args.windows))


def _cmd_bench(args) -> int:
    from .experiments import bench

    kwargs = {}
    if args.cycles is not None:
        kwargs["cycles"] = args.cycles
    if args.reps is not None:
        kwargs["reps"] = args.reps
    point = bench.run_benchmarks(**kwargs)
    print(bench.render(point))
    if args.json:
        bench.write_trajectory(args.json, point)
        print(f"wrote {args.json}")
    if args.check:
        recorded = bench.load_trajectory(args.check)["current"]
        failures = bench.check_regression(
            recorded, point, max_regression=args.max_regression
        )
        for failure in failures:
            print(f"REGRESSION {failure}")
        if failures:
            return 1
        print(f"trajectory holds (vs {args.check})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        _cmd_run(args)
    elif args.command == "faults":
        return _cmd_faults(args)
    elif args.command == "trace":
        _cmd_trace(args)
    elif args.command == "profile":
        _cmd_profile(args)
    elif args.command == "table1":
        print(table1.render(table1.run_table1(**_seeds(args))))
    elif args.command == "table2":
        print(table2.render(table2.run_table2(**_seeds(args))))
    elif args.command == "table3":
        print(table3.render(table3.run_table3(**_seeds(args))))
    elif args.command == "table4":
        print(table4.render())
    elif args.command == "table5":
        print(table5.render())
    elif args.command == "fig8":
        kwargs = _seeds(args)
        if args.max_routers is not None:
            kwargs["max_routers"] = args.max_routers
        print(fig8.render(fig8.run_fig8(**kwargs)))
    elif args.command == "export":
        from .experiments.export import export_all

        kwargs = _seeds(args)
        kwargs.setdefault("seeds", (2010,))
        export_all(args.output, **kwargs)
        print(f"wrote {args.output}")
    elif args.command == "bench":
        return _cmd_bench(args)
    elif args.command == "all":
        kwargs = _seeds(args)
        print(table1.render(table1.run_table1(**kwargs)))
        print()
        print(table2.render(table2.run_table2(**kwargs)))
        print()
        print(table3.render(table3.run_table3(**kwargs)))
        print()
        print(table4.render())
        print()
        print(table5.render())
        print()
        print(fig8.render(fig8.run_fig8(**kwargs)))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
