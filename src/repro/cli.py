"""Command-line interface: run configurations and regenerate exhibits.

Examples::

    python -m repro run --app bluray --design gss+sagm --priority
    python -m repro run --percentiles
    python -m repro trace --cycles 5000 -o trace.json
    python -m repro profile --window 1000
    python -m repro table1 --cycles 12000
    python -m repro fig8 --max-routers 5
    python -m repro table4
    python -m repro all --cycles 8000
    python -m repro sweep fault --rates 0 1e-3 --seeds 2010 2011 --jobs 4
    python -m repro sweep fig8 --max-routers 3 --jobs 8
    python -m repro sweep grid --axis app=bluray,single_dtv \
        --axis fault_rate=0,1e-3 --set cycles=4000 --jobs 4
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .core.system import build_system
from .experiments import fig8, table1, table2, table3, table4, table5
from .sim.config import DdrGeneration, NocDesign, SystemConfig


#: Default content-addressed result store shared by `repro all` and
#: `repro sweep` — exhibits and sweeps hit each other's cached points.
DEFAULT_STORE_PATH = ".repro-cache/results.jsonl"


def _design(value: str) -> NocDesign:
    for design in NocDesign:
        if design.value == value:
            return design
    raise argparse.ArgumentTypeError(
        f"unknown design {value!r}; choose from "
        f"{[d.value for d in NocDesign]}"
    )


def _ddr(value: str) -> DdrGeneration:
    for generation in DdrGeneration:
        if generation.value == value:
            return generation
    raise argparse.ArgumentTypeError(f"unknown DDR generation {value!r}")


def _arbiter(value: str) -> str:
    from .dram.scheduler import registered_backends

    if value not in registered_backends():
        raise argparse.ArgumentTypeError(
            f"unknown memory-arbiter backend {value!r}; choose from "
            f"{registered_backends()}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Application-aware NoC design for efficient SDRAM access "
            "(Jang & Pan, DAC 2010) — simulation and experiment driver"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one configuration")
    _add_config_args(run)
    run.add_argument(
        "--percentiles", action="store_true",
        help="also report p50/p95/p99 latency (keeps per-request samples)",
    )
    run.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="stream newline-JSON telemetry (run manifest, periodic "
        "samples, end-of-run summary) to PATH; watch live with "
        "`repro monitor PATH --follow`",
    )
    run.add_argument(
        "--sample-interval", type=int, default=1_000, metavar="CYCLES",
        help="cycles per telemetry sample window (default: 1000)",
    )
    run.add_argument(
        "--prom", metavar="PATH", default=None,
        help="after the run, write the metrics registry as a "
        "Prometheus text-format snapshot",
    )
    run.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="snapshot the full simulator state to PATH — periodically "
        "with --checkpoint-every, on SIGINT/SIGTERM (checkpoint, then "
        "exit 130/143), and at the end of the run; continue "
        "bit-identically with --resume PATH",
    )
    run.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="CYCLES",
        help="cycles between periodic snapshots (implies --checkpoint "
        "with a label-derived default path under .repro-cache/)",
    )
    run.add_argument(
        "--resume", metavar="CKPT", default=None,
        help="restore state from a snapshot and run on to --cycles (or "
        "the snapshot's configured total, whichever is larger); the "
        "snapshot carries its configuration, so --app/--design/... are "
        "ignored",
    )

    monitor = sub.add_parser(
        "monitor",
        help="render a telemetry stream: a final snapshot by default, "
        "a live updating view with --follow",
    )
    monitor.add_argument(
        "stream", help="telemetry ndjson path (written by --telemetry)"
    )
    monitor.add_argument(
        "-f", "--follow", action="store_true",
        help="tail the stream and redraw until the run/sweep finishes",
    )
    monitor.add_argument(
        "--once", action="store_true",
        help="parse the whole stream once and render one snapshot "
        "(exit 1 if it holds no records) — the CI parse check",
    )
    monitor.add_argument(
        "--refresh", type=float, default=1.0, metavar="SECONDS",
        help="redraw period with --follow (default: 1.0)",
    )
    monitor.add_argument(
        "--max-seconds", type=float, default=None, metavar="SECONDS",
        help="give up following after this long",
    )

    faults = sub.add_parser(
        "faults",
        help="fault-injection sweep: utilization/latency vs fault rate, "
        "with the full fault ledger (exits nonzero on hung requests or "
        "unaccounted faults)",
    )
    faults.add_argument(
        "--rates", type=float, nargs="+", default=None, metavar="RATE",
        help="uniform fault rates to sweep (default: 0 1e-4 1e-3 1e-2)",
    )
    faults.add_argument("--app", default="single_dtv")
    faults.add_argument("--cycles", type=int, default=None)
    faults.add_argument("--warmup", type=int, default=None)
    faults.add_argument("--seed", type=int, default=2010)

    trace = sub.add_parser(
        "trace",
        help="simulate one configuration with packet-lifecycle tracing",
    )
    _add_config_args(trace, default_cycles=5_000, default_warmup=0)
    trace.add_argument(
        "-o", "--output", default="trace.json", metavar="PATH",
        help="Chrome trace-event JSON output (load in Perfetto / "
        "chrome://tracing)",
    )
    trace.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="also dump raw events as JSON Lines",
    )
    trace.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="cap recorded events (overflow is counted, not silent)",
    )
    trace.add_argument(
        "--slowest", type=int, default=8, metavar="N",
        help="slowest requests listed in the latency breakdown",
    )

    profile = sub.add_parser(
        "profile",
        help="simulate one configuration and profile simulator wall-time",
    )
    _add_config_args(profile, default_cycles=20_000, default_warmup=0)
    profile.add_argument(
        "--window", type=int, default=1_000, metavar="CYCLES",
        help="profiling window size in cycles",
    )
    profile.add_argument(
        "--windows", type=int, default=3, metavar="N",
        help="most expensive windows to list",
    )

    for name, module in [
        ("table1", table1), ("table2", table2), ("table3", table3),
    ]:
        exhibit = sub.add_parser(name, help=f"regenerate {name}")
        exhibit.add_argument("--cycles", type=int, default=None)
        exhibit.add_argument("--warmup", type=int, default=None)
        exhibit.add_argument("--seeds", type=int, nargs="+", default=None)

    sub.add_parser("table4", help="regenerate Table IV (gate counts)")
    sub.add_parser("table5", help="regenerate Table V (power)")

    fig = sub.add_parser("fig8", help="regenerate Fig. 8 (GSS router sweep)")
    fig.add_argument("--cycles", type=int, default=None)
    fig.add_argument("--warmup", type=int, default=None)
    fig.add_argument("--seeds", type=int, nargs="+", default=None)
    fig.add_argument("--max-routers", type=int, default=None)

    arbiters_cmd = sub.add_parser(
        "arbiters",
        help="memory-arbiter comparison: sweep the Scheduler backends "
        "over the (app x DDR) grid at a fixed NoC design, with a WCET "
        "column (measured p100 vs analytic bound)",
    )
    arbiters_cmd.add_argument(
        "--arbiters", type=_arbiter, nargs="+", default=None,
        metavar="BACKEND",
        help="backends to compare (default: every builtin)",
    )
    arbiters_cmd.add_argument(
        "--design", type=_design, default=NocDesign.GSS_SAGM,
        help="fixed NoC design for every cell (default gss+sagm)",
    )
    arbiters_cmd.add_argument("--priority", action="store_true")
    arbiters_cmd.add_argument(
        "--apps", nargs="+", default=None, metavar="APP",
        help="restrict the application rows (default: all three)",
    )
    arbiters_cmd.add_argument("--cycles", type=int, default=None)
    arbiters_cmd.add_argument("--warmup", type=int, default=None)
    arbiters_cmd.add_argument("--seeds", type=int, nargs="+", default=None)
    arbiters_cmd.add_argument(
        "--store", default=None, metavar="PATH",
        help="serve/record cells through a content-addressed result "
        "store (shared with `repro sweep` and `repro all`)",
    )

    everything = sub.add_parser("all", help="regenerate every exhibit")
    everything.add_argument("--cycles", type=int, default=None)
    everything.add_argument("--warmup", type=int, default=None)
    everything.add_argument("--seeds", type=int, nargs="+", default=None)
    everything.add_argument(
        "--store", default=DEFAULT_STORE_PATH, metavar="PATH",
        help="content-addressed result store consulted before every "
        f"simulation (default: {DEFAULT_STORE_PATH}); a second "
        "invocation is served from it",
    )
    everything.add_argument(
        "--no-cache", action="store_true",
        help="ignore the result store and simulate every point afresh",
    )

    sweep = sub.add_parser(
        "sweep",
        help="sharded parameter sweeps: expand a grid into jobs, run "
        "them across worker processes, persist every point in a "
        "content-addressed result store (re-runs are cache hits)",
    )
    grids_sub = sweep.add_subparsers(dest="grid", required=True)

    sweep_fault = grids_sub.add_parser(
        "fault", help="fault-rate × seed grid (the `repro faults` sweep, "
        "sharded)",
    )
    sweep_fault.add_argument(
        "--rates", type=float, nargs="+", default=None, metavar="RATE",
        help="uniform fault rates (default: 0 1e-4 1e-3 1e-2)",
    )
    sweep_fault.add_argument("--seeds", type=int, nargs="+", default=[2010])
    sweep_fault.add_argument("--app", default="single_dtv")
    sweep_fault.add_argument("--cycles", type=int, default=None)
    sweep_fault.add_argument("--warmup", type=int, default=None)
    sweep_fault.add_argument("--drain-cycles", type=int, default=None)
    _add_sweep_args(sweep_fault)

    sweep_fig8 = grids_sub.add_parser(
        "fig8", help="Fig. 8 GSS-router-count grid, one job per "
        "(operating point, router count, seed)",
    )
    sweep_fig8.add_argument("--cycles", type=int, default=None)
    sweep_fig8.add_argument("--warmup", type=int, default=None)
    sweep_fig8.add_argument("--seeds", type=int, nargs="+", default=None)
    sweep_fig8.add_argument("--max-routers", type=int, default=None)
    _add_sweep_args(sweep_fig8)

    sweep_grid = grids_sub.add_parser(
        "grid", help="arbitrary SystemConfig grid: cross every --axis, "
        "pin --set fields, derive per-job seeds unless seed is an axis",
    )
    sweep_grid.add_argument(
        "--axis", action="append", default=[], metavar="FIELD=V1,V2,...",
        help="swept field and its values (repeatable); fields are "
        "SystemConfig fields plus fault_rate",
    )
    sweep_grid.add_argument(
        "--set", action="append", default=[], metavar="FIELD=VALUE",
        dest="pins", help="pinned field override (repeatable)",
    )
    sweep_grid.add_argument(
        "--replicates", type=int, default=1, metavar="N",
        help="derived-seed replicates per grid point",
    )
    sweep_grid.add_argument("--root-seed", type=int, default=2010)
    sweep_grid.add_argument("--name", default="grid")
    _add_sweep_args(sweep_grid)

    export = sub.add_parser(
        "export", help="run every exhibit and write results as JSON"
    )
    export.add_argument("output", help="path of the JSON document to write")
    export.add_argument("--cycles", type=int, default=None)
    export.add_argument("--warmup", type=int, default=None)
    export.add_argument("--seeds", type=int, nargs="+", default=None)

    bench_cmd = sub.add_parser(
        "bench", help="run the standing simulator benchmarks"
    )
    bench_cmd.add_argument("--cycles", type=int, default=None)
    bench_cmd.add_argument("--reps", type=int, default=None)
    bench_cmd.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the measured point as a trajectory JSON file",
    )
    bench_cmd.add_argument(
        "--check", metavar="TRAJECTORY", default=None,
        help="compare against a recorded BENCH_*.json; exit 1 if any "
        "benchmark regressed more than --max-regression",
    )
    bench_cmd.add_argument(
        "--max-regression", type=float, default=0.2,
        help="allowed calibration-scaled cycles/sec drop (default 0.2)",
    )
    bench_cmd.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="stream one bench_round record per timed repetition to PATH",
    )

    return parser


def _add_sweep_args(parser: argparse.ArgumentParser) -> None:
    """The orchestration flags shared by every `repro sweep` grid."""
    import os

    parser.add_argument(
        "--jobs", type=int, default=os.cpu_count() or 1, metavar="N",
        help="worker processes (default: all cores); 1 runs in-process",
    )
    parser.add_argument(
        "--store", default=DEFAULT_STORE_PATH, metavar="PATH",
        help=f"result store JSONL (default: {DEFAULT_STORE_PATH})",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="repair the store first (truncate any corrupt tail left by "
        "a crash), then serve already-stored points from it — an "
        "interrupted or killed sweep continues where it stopped",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="re-simulate every point, overwriting stored results",
    )
    parser.add_argument(
        "--retry-failed", action="store_true",
        help="re-execute stored failed points instead of serving them "
        "from the store",
    )
    parser.add_argument(
        "--require-all-cached", action="store_true",
        help="exit 2 if any point had to be simulated (CI assertion "
        "that a sweep is fully cached)",
    )
    parser.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="render results as a text table or a JSON document",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the stderr progress line",
    )
    parser.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="stream sweep lifecycle telemetry (job events, worker "
        "heartbeats, progress/ETA) to PATH; watch live with "
        "`repro monitor PATH --follow`",
    )
    parser.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock deadline per job attempt; a timed-out attempt "
        "fails (and is retried under --job-retries)",
    )
    parser.add_argument(
        "--job-retries", type=int, default=0, metavar="N",
        help="re-executions allowed after a timeout or unexpected "
        "exception, with deterministic jittered backoff between "
        "attempts (domain failures are never retried)",
    )
    parser.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="mid-job snapshot directory: metrics jobs save "
        "<job-key>.ckpt periodically, and a retried or resumed job "
        "continues from its snapshot bit-identically",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="CYCLES",
        help="cycles between mid-job snapshots (default: a quarter of "
        "each job's run)",
    )
    parser.add_argument(
        "--fsync-store", action="store_true",
        help="fsync the result store after every append, so no "
        "completed job is lost even to a power failure",
    )


def _add_config_args(
    parser: argparse.ArgumentParser,
    default_cycles: int = 20_000,
    default_warmup: int = 3_000,
) -> None:
    """The shared single-configuration flags (run / trace / profile)."""
    parser.add_argument("--app", default="single_dtv")
    parser.add_argument("--design", type=_design, default=NocDesign.GSS_SAGM)
    parser.add_argument("--ddr", type=_ddr, default=DdrGeneration.DDR2)
    parser.add_argument("--clock", type=int, default=333, metavar="MHZ")
    parser.add_argument("--cycles", type=int, default=default_cycles)
    parser.add_argument("--warmup", type=int, default=default_warmup)
    parser.add_argument("--seed", type=int, default=2010)
    parser.add_argument("--pct", type=int, default=5)
    parser.add_argument(
        "--arbiter", type=_arbiter, default=None, metavar="BACKEND",
        help="memory-arbiter backend (engine | memmax | databahn | dpq | "
        "bank-reg); default: the design-matched subsystem",
    )
    parser.add_argument("--priority", action="store_true")
    parser.add_argument("--sti", action="store_true")
    parser.add_argument("--adaptive", action="store_true")
    parser.add_argument("--gss-routers", type=int, default=None)
    parser.add_argument(
        "--vcs", type=int, default=1,
        help="virtual channels per link (2 adds a priority lane)",
    )
    parser.add_argument(
        "--link-buffers", type=int, default=12, metavar="FLITS"
    )
    parser.add_argument(
        "--fault-rate", type=float, default=0.0, metavar="RATE",
        help="uniform fault-injection rate (0 builds no resilience "
        "machinery at all; see repro.resilience)",
    )
    parser.add_argument(
        "--check-invariants", action="store_true",
        help="attach the live invariant checker (credit/token "
        "conservation, packet-age bound)",
    )


def _config_from(args) -> SystemConfig:
    faults = None
    if getattr(args, "fault_rate", 0.0) > 0.0:
        from .resilience import FaultConfig

        faults = FaultConfig.uniform(args.fault_rate)
    return SystemConfig(
        app=args.app,
        design=args.design,
        ddr=args.ddr,
        clock_mhz=args.clock,
        cycles=args.cycles,
        warmup=args.warmup,
        seed=args.seed,
        pct=args.pct,
        priority_enabled=args.priority,
        sti=args.sti,
        adaptive_routing=args.adaptive,
        num_gss_routers=args.gss_routers,
        virtual_channels=args.vcs,
        link_buffer_flits=args.link_buffers,
        faults=faults,
        check_invariants=getattr(args, "check_invariants", False),
        arbiter=getattr(args, "arbiter", None),
    )


def _seeds(args) -> dict:
    kwargs = {}
    if getattr(args, "cycles", None) is not None:
        kwargs["cycles"] = args.cycles
    if getattr(args, "warmup", None) is not None:
        kwargs["warmup"] = args.warmup
    if getattr(args, "seeds", None) is not None:
        kwargs["seeds"] = tuple(args.seeds)
    return kwargs


def _default_checkpoint_path(label: str) -> str:
    import re

    slug = re.sub(r"[^A-Za-z0-9._-]+", "-", label).strip("-")
    return f".repro-cache/run-{slug or 'run'}.ckpt"


def _cmd_run(args) -> int:
    import signal

    telemetry_path = getattr(args, "telemetry", None)
    started = time.time()
    resume_path = getattr(args, "resume", None)
    if resume_path is not None:
        from .sim.checkpoint import CheckpointError, load_checkpoint

        try:
            system = load_checkpoint(resume_path)
        except CheckpointError as exc:
            raise SystemExit(f"error: {exc}")
        config = system.config
        print(
            f"resumed       : {resume_path} "
            f"(cycle {system.simulator.cycle})"
        )
    else:
        config = _config_from(args)
        # Telemetry keeps per-request samples so sample windows carry
        # real p50/p95/p99 — sample retention never perturbs simulated
        # metrics.
        system = build_system(
            config,
            keep_samples=(
                args.percentiles
                or telemetry_path is not None
                or getattr(args, "prom", None) is not None
            ),
        )
    writer = None
    if telemetry_path is not None:
        from .obs.stream import TelemetryWriter, run_manifest

        if args.sample_interval < 1:
            raise SystemExit("--sample-interval must be >= 1")
        writer = TelemetryWriter(telemetry_path)
        writer.emit(
            "run_start", **run_manifest(config, args.sample_interval)
        )
        if system.sampler is not None:
            # A resumed snapshot carries its sampler (windows intact);
            # only the process-local stream callback needs rewiring.
            system.sampler.on_sample = writer.sample
        else:
            system.attach_sampler(
                args.sample_interval, on_sample=writer.sample
            )

    # Checkpoint policy: an explicit path, a label-derived default when
    # only a cadence (or a resume source) is given, or none at all.
    ckpt_every = getattr(args, "checkpoint_every", None)
    if ckpt_every is not None and ckpt_every < 1:
        raise SystemExit("--checkpoint-every must be >= 1")
    ckpt_path = getattr(args, "checkpoint", None)
    if ckpt_path is None and (ckpt_every is not None or resume_path):
        ckpt_path = resume_path or _default_checkpoint_path(config.label)

    if ckpt_path is not None and system.watchdog is not None:
        # Post-mortem hook: the instant a request exhausts its watchdog
        # re-issue budget, dump the full simulator state next to the
        # regular snapshot so the hang can be dissected offline.
        def snapshot_hang(cycle: int, parent: int, master: int) -> None:
            from .sim.checkpoint import save_checkpoint

            hang_path = f"{ckpt_path}.hang"
            save_checkpoint(
                hang_path, system,
                meta={"reason": "watchdog-hang", "request": parent,
                      "master": master},
            )
            print(
                f"watchdog hang : request {parent} (master {master}) at "
                f"cycle {cycle}; state dumped to {hang_path}",
                file=sys.stderr,
            )

        system.watchdog.on_hang = snapshot_hang

    # With a checkpoint target, SIGINT/SIGTERM mean "snapshot, then
    # exit 130/143" instead of dying mid-cycle: the handler only sets a
    # flag, and the run loop notices it at the next segment boundary.
    stop_signals: List[int] = []
    previous_handlers = {}
    if ckpt_path is not None:
        def request_stop(signum, frame):
            stop_signals.append(signum)

        for signum in (signal.SIGINT, signal.SIGTERM):
            previous_handlers[signum] = signal.signal(signum, request_stop)

    def on_checkpoint(cycle: int) -> bool:
        from .sim.checkpoint import save_checkpoint

        interrupted = bool(stop_signals)
        if ckpt_every is not None or interrupted:
            save_checkpoint(ckpt_path, system)
            if writer is not None:
                writer.emit(
                    "checkpoint", cycle=cycle, path=str(ckpt_path),
                    reason="signal" if interrupted else "interval",
                )
        return interrupted

    total_target = (
        args.cycles if resume_path is None
        else max(args.cycles, config.cycles)
    )
    remaining = max(0, total_target - system.simulator.cycle)
    try:
        metrics = system.run(
            remaining,
            # Segment the run when any checkpointing is live, so signal
            # checks happen at least every 1000 cycles.
            checkpoint_every=(
                (ckpt_every or 1_000) if ckpt_path is not None else None
            ),
            on_checkpoint=on_checkpoint if ckpt_path is not None else None,
        )
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
    elapsed = time.time() - started

    if stop_signals:
        print(
            f"interrupted   : snapshot at cycle {system.simulator.cycle} "
            f"-> {ckpt_path}"
        )
        print(f"resume with   : repro run --resume {ckpt_path}")
        if writer is not None:
            writer.close()
        return 130 if signal.SIGINT in stop_signals else 143
    print(f"configuration : {config.label}")
    print(f"cycles        : {metrics.cycles} ({elapsed:.1f}s wall)")
    print(f"utilization   : {metrics.utilization:.3f} "
          f"(bus occupancy {metrics.raw_utilization:.3f})")
    print(f"latency (all) : {metrics.latency_all:.1f} cycles")
    print(f"latency (dem) : {metrics.latency_demand:.1f} cycles")
    print(f"row-hit rate  : {metrics.row_hit_rate:.2f}")
    print(f"completed     : {metrics.completed} requests")
    if metrics.service_p100:
        bound = (
            f" (analytic bound {metrics.wcet_bound:.0f})"
            if metrics.wcet_bound is not None else ""
        )
        print(f"service p100  : {metrics.service_p100:.0f} cycles{bound}")
    if args.percentiles:
        series = system.stats.all_packets
        if series.count:
            print(
                "percentiles   : "
                f"p50={series.percentile(50):.0f} "
                f"p95={series.percentile(95):.0f} "
                f"p99={series.percentile(99):.0f} cycles"
            )
        else:
            print("percentiles   : n/a (no completed requests)")
    if system.resilience is not None:
        quiesced = system.drain()
        controller = system.resilience
        print(
            "faults        : "
            f"injected={controller.injected_total} "
            f"corrected={controller.corrected} "
            f"recovered={controller.recovered} "
            f"failed={controller.failed_faults} "
            f"unresolved={controller.unresolved}"
        )
        print(
            "recovery      : "
            f"crc_retries={controller.crc_retries} "
            f"dram_rereads={controller.dram_reread_count} "
            f"watchdog={controller.watchdog_reissues} "
            f"failed_requests={controller.failed_requests}"
        )
        if not quiesced:
            print("WARNING       : system did not drain to quiescence",
                  file=sys.stderr)
    if writer is not None:
        from dataclasses import asdict

        writer.emit(
            "run_end", label=config.label, wall_s=elapsed, **asdict(metrics)
        )
        writer.close()
        print(
            f"telemetry     : {telemetry_path} "
            f"({writer.records_written} records)"
        )
    if getattr(args, "prom", None):
        from .obs.stream import prometheus_exposition

        registry = system.collect_metrics()
        for name, series in (
            ("latency.all", system.stats.all_packets),
            ("latency.demand", system.stats.demand_packets),
        ):
            histogram = registry.histogram(name)
            for value in series.samples:
                histogram.record(value)
        with open(args.prom, "w", encoding="utf-8") as handle:
            handle.write(prometheus_exposition(registry))
        print(f"prometheus    : {args.prom} ({len(registry)} metrics)")
    if getattr(args, "checkpoint", None):
        # An explicit --checkpoint also snapshots the *completed* run,
        # so it can later be extended with --resume and more --cycles.
        from .sim.checkpoint import save_checkpoint

        save_checkpoint(args.checkpoint, system)
        print(
            f"checkpoint    : {args.checkpoint} "
            f"(cycle {system.simulator.cycle})"
        )
    return 0


def _cmd_trace(args) -> None:
    from .obs import MemoryTracer
    from .obs.exporters import (
        render_latency_report,
        write_chrome_trace,
        write_jsonl,
    )

    config = _config_from(args)
    tracer = MemoryTracer(limit=args.limit)
    system = build_system(config, tracer=tracer)
    metrics = system.run()
    print(f"configuration : {config.label}")
    print(f"cycles        : {metrics.cycles}")
    counts = tracer.counts()
    summary = "  ".join(f"{name}={counts[name]}" for name in sorted(counts))
    print(f"events        : {len(tracer)}  ({summary})")
    if tracer.dropped:
        print(f"dropped       : {tracer.dropped} (over --limit)")
    write_chrome_trace(tracer.events, args.output)
    print(f"chrome trace  : {args.output} (open in https://ui.perfetto.dev)")
    if args.jsonl:
        write_jsonl(tracer.events, args.jsonl)
        print(f"jsonl dump    : {args.jsonl}")
    print()
    print(render_latency_report(tracer.events, slowest=args.slowest))


def _cmd_faults(args) -> int:
    from .experiments import fault_sweep

    kwargs = dict(seed=args.seed, app=args.app)
    if args.rates is not None:
        kwargs["rates"] = tuple(args.rates)
    if args.cycles is not None:
        kwargs["cycles"] = args.cycles
    if args.warmup is not None:
        kwargs["warmup"] = args.warmup
    points = fault_sweep.run_fault_sweep(**kwargs)
    print(fault_sweep.render(points))
    failing = [p for p in points if p.failure_reason() is not None]
    for point in failing:
        print(f"FAIL: {point.failure_reason()}", file=sys.stderr)
    return 1 if failing else 0


def _cmd_profile(args) -> None:
    from .obs import SimulatorProfiler

    config = _config_from(args)
    profiler = SimulatorProfiler(window_cycles=args.window)
    system = build_system(config)
    system.simulator.attach_profiler(profiler)
    metrics = system.run()
    print(f"configuration : {config.label}")
    print(f"cycles        : {metrics.cycles}")
    print()
    print(profiler.report(windows=args.windows))


def _cmd_bench(args) -> int:
    from .experiments import bench

    kwargs = {}
    if args.cycles is not None:
        kwargs["cycles"] = args.cycles
    if args.reps is not None:
        kwargs["reps"] = args.reps
    telemetry = None
    if getattr(args, "telemetry", None):
        from .obs.stream import TelemetryWriter

        telemetry = TelemetryWriter(args.telemetry)
    try:
        point = bench.run_benchmarks(telemetry=telemetry, **kwargs)
    finally:
        if telemetry is not None:
            telemetry.close()
    print(bench.render(point))
    if args.json:
        bench.write_trajectory(args.json, point)
        print(f"wrote {args.json}")
    if args.check:
        document = bench.load_trajectory(args.check)
        for warning in bench.host_mismatch(document.get("host")):
            print(
                f"WARNING cross-host comparison — {warning}",
                file=sys.stderr,
            )
        failures = bench.check_regression(
            document["current"], point, max_regression=args.max_regression
        )
        for failure in failures:
            print(f"REGRESSION {failure}")
        if failures:
            return 1
        print(f"trajectory holds (vs {args.check})")
    return 0


#: SystemConfig fields the generic grid can sweep or pin, with their
#: value parsers (`fault_rate` is the uniform-profile pseudo-field).
_SWEEP_BOOL_FIELDS = frozenset(
    ["priority_enabled", "sti", "adaptive_routing", "check_invariants"]
)
_SWEEP_INT_FIELDS = frozenset([
    "clock_mhz", "pct", "num_gss_routers", "cycles", "warmup", "seed",
    "input_buffer_flits", "link_buffer_flits", "max_outstanding",
    "virtual_channels",
])


def _grid_value(field: str, text: str):
    """Parse one `--axis`/`--set` value for a SystemConfig field."""
    if field == "design":
        return _design(text)
    if field == "ddr":
        return _ddr(text)
    if field == "app":
        return text
    if field in _SWEEP_BOOL_FIELDS:
        lowered = text.lower()
        if lowered in ("1", "true", "yes", "on"):
            return True
        if lowered in ("0", "false", "no", "off"):
            return False
        raise argparse.ArgumentTypeError(
            f"{field} expects a boolean, got {text!r}"
        )
    if field == "arbiter":
        return _arbiter(text)
    if field == "fault_rate":
        return float(text)
    if field in _SWEEP_INT_FIELDS:
        return int(text)
    raise argparse.ArgumentTypeError(
        f"unknown sweep field {field!r}; sweepable fields: app, arbiter, "
        f"design, ddr, fault_rate, "
        f"{', '.join(sorted(_SWEEP_BOOL_FIELDS | _SWEEP_INT_FIELDS))}"
    )


def _parse_assignment(text: str, multi: bool):
    """Split `field=v` / `field=v1,v2,...` and coerce the values."""
    field, _, raw = text.partition("=")
    if not _ or not field or not raw:
        raise argparse.ArgumentTypeError(
            f"expected FIELD=VALUE{'S' if multi else ''}, got {text!r}"
        )
    if multi:
        return field, [_grid_value(field, part) for part in raw.split(",")]
    return field, _grid_value(field, raw)


def _sweep_document(report) -> dict:
    return {
        "summary": {
            "total": report.total,
            "cache_hits": report.hits,
            "executed": report.executed,
            "failed": report.failed,
            "duplicates": report.duplicates,
            "elapsed_s": round(report.elapsed_s, 3),
            "heartbeat_drops": report.heartbeat_drops,
            "interrupted": report.interrupted,
        },
        "records": [dict(outcome.record) for outcome in report.outcomes],
    }


def _render_grid_table(report) -> str:
    lines = [
        f"{'status':>6s} {'util':>7s} {'lat(all)':>9s} {'lat(dem)':>9s} "
        f"{'done':>6s}  job"
    ]
    for outcome in report.outcomes:
        result = outcome.record.get("result") or {}
        if outcome.ok:
            lines.append(
                f"{'ok':>6s} {result['utilization']:7.3f} "
                f"{result['latency_all']:9.1f} "
                f"{result['latency_demand']:9.1f} "
                f"{int(result['completed']):>6d}  {outcome.job.label}"
            )
        else:
            lines.append(
                f"{'FAIL':>6s} {'-':>7s} {'-':>9s} {'-':>9s} {'-':>6s}  "
                f"{outcome.job.label}"
            )
    return "\n".join(lines)


def _cmd_sweep(args) -> int:
    import json

    from .experiments import fault_sweep as fault_sweep_mod
    from .experiments.fig8 import render as render_fig8
    from .sweep import (
        ProgressPrinter,
        ResultStore,
        config_grid_spec,
        fault_points,
        fault_sweep_spec,
        fig8_curves,
        fig8_jobs,
        run_sweep,
    )

    store = ResultStore(args.store, fsync=args.fsync_store)
    if args.resume:
        repaired = store.repair()
        if repaired:
            print(
                f"store repaired: truncated {repaired} corrupt byte(s) "
                f"from {args.store}",
                file=sys.stderr,
            )
    progress = None if args.quiet else ProgressPrinter()
    telemetry = None
    if getattr(args, "telemetry", None):
        from .obs.stream import TelemetryWriter

        telemetry = TelemetryWriter(args.telemetry)

    def run_jobs(jobs):
        # One close point: terminate the tty progress line (and the
        # stream) before any table lands on stdout.
        try:
            return run_sweep(
                jobs,
                store=store,
                workers=args.jobs,
                use_cache=not args.no_cache,
                retry_failed=args.retry_failed,
                progress=progress,
                telemetry=telemetry,
                job_timeout_s=args.job_timeout,
                job_retries=args.job_retries,
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_every=args.checkpoint_every,
                handle_signals=True,
            )
        finally:
            if progress is not None:
                progress.close()
            if telemetry is not None:
                telemetry.close()
                print(
                    f"telemetry: {args.telemetry} "
                    f"({telemetry.records_written} records)",
                    file=sys.stderr,
                )

    if args.grid == "fault":
        kwargs = dict(seeds=tuple(args.seeds), app=args.app)
        if args.rates is not None:
            kwargs["rates"] = tuple(args.rates)
        if args.cycles is not None:
            kwargs["cycles"] = args.cycles
        if args.warmup is not None:
            kwargs["warmup"] = args.warmup
        if args.drain_cycles is not None:
            kwargs["drain_cycles"] = args.drain_cycles
        spec = fault_sweep_spec(**kwargs)
        report = run_jobs(spec)
        if args.format == "json":
            print(json.dumps(_sweep_document(report), indent=1))
        elif report.interrupted:
            print(report.summary())
        else:
            for seed in args.seeds:
                rows = [p for s, p in fault_points(store, spec) if s == seed]
                print(f"seed {seed}")
                print(fault_sweep_mod.render(rows))
                print()
            print(report.summary())
    elif args.grid == "fig8":
        kwargs = {}
        if args.cycles is not None:
            kwargs["cycles"] = args.cycles
        if args.warmup is not None:
            kwargs["warmup"] = args.warmup
        if args.seeds is not None:
            kwargs["seeds"] = tuple(args.seeds)
        if args.max_routers is not None:
            kwargs["max_routers"] = args.max_routers
        report = run_jobs(fig8_jobs(**kwargs))
        if args.format == "json":
            print(json.dumps(_sweep_document(report), indent=1))
        elif report.interrupted:
            print(report.summary())
        else:
            print(render_fig8(fig8_curves(store, **kwargs)))
            print()
            print(report.summary())
    else:  # generic SystemConfig grid
        axes = {}
        for entry in args.axis:
            field, values = _parse_assignment(entry, multi=True)
            axes[field] = values
        base = {}
        for entry in args.pins:
            field, value = _parse_assignment(entry, multi=False)
            base[field] = value
        if not axes:
            print("error: at least one --axis is required", file=sys.stderr)
            return 2
        spec = config_grid_spec(
            base, axes, replicates=args.replicates,
            root_seed=args.root_seed, name=args.name,
        )
        report = run_jobs(spec)
        if args.format == "json":
            print(json.dumps(_sweep_document(report), indent=1))
        else:
            print(_render_grid_table(report))
            print()
            print(report.summary())

    for outcome in report.outcomes:
        if not outcome.ok:
            print(
                f"FAIL: {outcome.job.label}: {outcome.record.get('error')}",
                file=sys.stderr,
            )
    if report.interrupted:
        print(
            "sweep interrupted — completed points are stored; re-run "
            "the same command (with --resume) to continue",
            file=sys.stderr,
        )
        return 130
    if args.require_all_cached and not report.all_cached:
        print(
            f"FAIL: --require-all-cached but {report.executed} point(s) "
            f"were simulated",
            file=sys.stderr,
        )
        return 2
    return 1 if report.failed else 0


def _render_all(kwargs) -> None:
    print(table1.render(table1.run_table1(**kwargs)))
    print()
    print(table2.render(table2.run_table2(**kwargs)))
    print()
    print(table3.render(table3.run_table3(**kwargs)))
    print()
    print(table4.render())
    print()
    print(table5.render())
    print()
    print(fig8.render(fig8.run_fig8(**kwargs)))


def _cmd_all(args) -> None:
    kwargs = _seeds(args)
    if args.no_cache:
        _render_all(kwargs)
        return
    from .experiments.runner import cached_runs
    from .sweep.store import ResultStore

    store = ResultStore(args.store)
    with cached_runs(store):
        _render_all(kwargs)
    print()
    print(
        f"result store  : {args.store} "
        f"({store.hits} hit(s), {store.misses} simulated)"
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    elif args.command == "faults":
        return _cmd_faults(args)
    elif args.command == "trace":
        _cmd_trace(args)
    elif args.command == "profile":
        _cmd_profile(args)
    elif args.command == "table1":
        print(table1.render(table1.run_table1(**_seeds(args))))
    elif args.command == "table2":
        print(table2.render(table2.run_table2(**_seeds(args))))
    elif args.command == "table3":
        print(table3.render(table3.run_table3(**_seeds(args))))
    elif args.command == "table4":
        print(table4.render())
    elif args.command == "table5":
        print(table5.render())
    elif args.command == "fig8":
        kwargs = _seeds(args)
        if args.max_routers is not None:
            kwargs["max_routers"] = args.max_routers
        print(fig8.render(fig8.run_fig8(**kwargs)))
    elif args.command == "export":
        from .experiments.export import export_all

        kwargs = _seeds(args)
        kwargs.setdefault("seeds", (2010,))
        export_all(args.output, **kwargs)
        print(f"wrote {args.output}")
    elif args.command == "bench":
        return _cmd_bench(args)
    elif args.command == "monitor":
        from .obs.monitor import run_monitor

        return run_monitor(
            args.stream,
            follow=args.follow,
            once=args.once,
            refresh_s=args.refresh,
            max_seconds=args.max_seconds,
        )
    elif args.command == "arbiters":
        from .experiments.comparison import (
            run_arbiter_comparison,
            render_arbiter_comparison,
        )

        kwargs = _seeds(args)
        if args.arbiters is not None:
            kwargs["arbiters"] = tuple(args.arbiters)
        if args.apps is not None:
            kwargs["apps"] = tuple(args.apps)
        if args.store is not None:
            from .experiments.runner import cached_runs
            from .sweep.store import ResultStore

            with cached_runs(ResultStore(args.store)):
                result = run_arbiter_comparison(
                    design=args.design, priority=args.priority, **kwargs
                )
        else:
            result = run_arbiter_comparison(
                design=args.design, priority=args.priority, **kwargs
            )
        print(render_arbiter_comparison(result))
        if result.bound_violations():
            return 1
    elif args.command == "sweep":
        return _cmd_sweep(args)
    elif args.command == "all":
        _cmd_all(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
