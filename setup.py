"""Setup shim for environments without the `wheel` package.

All real metadata lives in pyproject.toml; this file exists so that
legacy editable installs (`pip install -e . --no-use-pep517`) work in
offline environments where PEP 517 editable builds cannot run.
"""
from setuptools import setup

setup()
