"""Priority service study: PCT sweep and design comparison.

The priority control token (PCT, Algorithm 1 line 9) sets how aggressively
a GSS router serves priority packets: PCT=1 degenerates to the
priority-equal [4] scheduler, the maximum degenerates to priority-first.
This example sweeps PCT on the single-DTV model and compares the resulting
CPU demand latency against the CONV+PFS and [4]+PFS reference points,
showing the paper's headline trade-off: GSS buys priority latency at a far
smaller utilization cost than priority-first service.

Run with::

    python examples/priority_service.py
"""

from repro import NocDesign, SystemConfig, run_config

CYCLES = 15_000
WARMUP = 2_500


def run(design: NocDesign, pct: int = 5) -> tuple:
    metrics = run_config(SystemConfig(
        app="single_dtv", clock_mhz=333, design=design, pct=pct,
        priority_enabled=True, cycles=CYCLES, warmup=WARMUP,
    ))
    return metrics.utilization, metrics.latency_all, metrics.latency_demand


def main() -> None:
    print("Reference designs (single DTV, DDR II @ 333 MHz):")
    for design in (NocDesign.CONV_PFS, NocDesign.SDRAM_AWARE_PFS, NocDesign.SDRAM_AWARE):
        util, lat, pri = run(design)
        print(f"  {design.value:16s} util={util:.3f} latency={lat:6.1f} priority={pri:6.1f}")

    print("\nGSS PCT sweep (1 = priority-equal ... 6 = priority-first):")
    for pct in range(1, 7):
        util, lat, pri = run(NocDesign.GSS, pct=pct)
        print(f"  PCT={pct}  util={util:.3f} latency={lat:6.1f} priority={pri:6.1f}")

    print("\nGSS+SAGM (the full proposal, PCT=5):")
    util, lat, pri = run(NocDesign.GSS_SAGM)
    print(f"  gss+sagm          util={util:.3f} latency={lat:6.1f} priority={pri:6.1f}")


if __name__ == "__main__":
    main()
