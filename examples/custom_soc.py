"""Building a custom SoC model with the public API.

The three paper applications are ordinary :class:`AppModel` instances; a
downstream user can describe their own SoC the same way.  This example
defines a small automotive-flavoured SoC (camera pipelines + CPU + radar
DSP) on a 3x3 mesh, registers it, and runs the design comparison on it.

Run with::

    python examples/custom_soc.py
"""

from repro import NocDesign, SystemConfig, run_config
from repro.workloads.apps import APP_MODELS, AppModel
from repro.workloads.cores import (
    CoreSpec,
    Stream,
    cpu_core,
    display_core,
    graphics_core,
)


def radar_dsp(gap_mean: float = 30.0) -> CoreSpec:
    """Radar DSP: bursty FFT windows — medium reads, rare writes."""
    return CoreSpec(
        name="radar-dsp",
        streams=[
            Stream(is_read=True, weight=0.8,
                   beats_choices=[(16, 0.6), (32, 0.4)], jump_probability=0.05),
            Stream(is_read=False, weight=0.2,
                   beats_choices=[(16, 1.0)], jump_probability=0.05),
        ],
        gap_mean=gap_mean,
        max_outstanding=2,
        bandwidth_weight=1.2,
    )


def camera_pipeline(gap_mean: float = 120.0) -> CoreSpec:
    """Camera ISP: long line-buffer reads and writes."""
    return CoreSpec(
        name="camera-isp",
        streams=[
            Stream(is_read=True, weight=0.5,
                   beats_choices=[(64, 1.0)], jump_probability=0.02),
            Stream(is_read=False, weight=0.5,
                   beats_choices=[(64, 1.0)], jump_probability=0.02),
        ],
        gap_mean=gap_mean,
        max_outstanding=2,
        bandwidth_weight=1.8,
        run_mean=6.0,
    )


def adas_soc() -> AppModel:
    return AppModel(
        name="adas_soc",
        mesh_width=3,
        mesh_height=3,
        cores=[
            cpu_core(gap_mean=30.0),
            radar_dsp(),
            camera_pipeline(gap_mean=110.0),   # front camera
            camera_pipeline(gap_mean=130.0),   # rear camera
            display_core(gap_mean=150.0),      # cluster display
            graphics_core(gap_mean=70.0),      # HUD overlay
            radar_dsp(gap_mean=44.0),          # corner radar
            display_core(gap_mean=200.0),      # mirror replacement
        ],
    )


def main() -> None:
    # Registering the model makes its name valid in SystemConfig.
    APP_MODELS["adas_soc"] = adas_soc

    print(f"{'design':18s} {'utilization':>11s} {'latency':>9s} {'demand':>8s}")
    for design in (NocDesign.SDRAM_AWARE, NocDesign.GSS, NocDesign.GSS_SAGM):
        config = SystemConfig(
            app="adas_soc",
            design=design,
            clock_mhz=333,
            priority_enabled=True,
            cycles=15_000,
            warmup=2_500,
        )
        metrics = run_config(config)
        print(
            f"{design.value:18s} {metrics.utilization:11.3f} "
            f"{metrics.latency_all:9.1f} {metrics.latency_demand:8.1f}"
        )


if __name__ == "__main__":
    main()
