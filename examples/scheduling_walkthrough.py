"""Fig. 1 walkthrough: priority-equal vs priority-first vs GSS hybrid.

Recreates the paper's motivating example (Fig. 1): an input buffer holds
two CPU demand requests, two prefetch requests, and two video-core
requests.  Demand 2 bank-conflicts with demand 1 (same bank, different
row), while prefetch 2 row-hits request 2.  The example drives the GSS
flow controller directly — no network — at three PCT settings and prints
the schedule each produces:

* PCT = 1 (priority-equal, the [4] baseline): best bank behaviour, but
  demand 2 is served late — the CPU stalls;
* priority-first: demands go first, but demand 2 immediately follows
  demand 1 into the same bank — a bank conflict stalls the SDRAM;
* the hybrid (PCT between the extremes) serves the demands early *and*
  slips a different-bank request between the two conflicting demands.

Run with::

    python examples/scheduling_walkthrough.py
"""

from itertools import count

from repro.core.gss_flow_control import GssFlowController, PfsMemoryFlowController, SdramAwareFlowController
from repro.dram.request import MemoryRequest, ServiceClass
from repro.dram.timing import DramTiming
from repro.noc.packet import request_packet
from repro.noc.topology import Port
from repro.sim.config import DdrGeneration


def fig1_requests():
    """The six requests of Fig. 1(a).  BA = bank address; all reads; all
    rows differ except prefetch 2 and request 2 (a row-buffer hit pair)."""
    mk = count()

    def req(name, bank, row, priority=False):
        request = MemoryRequest(
            request_id=next(mk), master=0, bank=bank, row=row, column=0,
            beats=8, is_read=True,
            service=ServiceClass.PRIORITY if priority else ServiceClass.BEST_EFFORT,
            is_demand=priority,
        )
        return name, request

    return [
        req("demand 1", bank=1, row=10, priority=True),
        req("prefetch 1", bank=2, row=20),
        req("request 1", bank=3, row=30),
        req("demand 2", bank=1, row=11, priority=True),   # conflicts demand 1
        req("prefetch 2", bank=4, row=40),
        req("request 2", bank=4, row=40),                 # row-hits prefetch 2
    ]


def schedule_with(controller, label):
    timing = DramTiming.for_clock(DdrGeneration.DDR2, 333)
    names = {}
    packets = []
    pid = count()
    for port, (name, request) in enumerate(fig1_requests()):
        packet = request_packet(next(pid), request, src=1, dst=0, cycle=0)
        names[packet.packet_id] = name
        # Each request arrives on its own (virtual) input port so the
        # controller may pick any of them, like Fig. 1's input buffer.
        controller.on_arrival(Port(port % 5), packet, cycle=0)
        packets.append((Port(port % 5), packet))
    order = []
    remaining = list(packets)
    cycle = 0
    while remaining:
        winner = controller.pick(remaining, cycle)
        assert winner is not None
        port, packet = winner
        controller.on_scheduled(port, packet, cycle)
        controller.on_delivered(packet, cycle + 4)
        order.append(names[packet.packet_id])
        remaining = [c for c in remaining if c[1] is not packet]
        cycle += 4
    print(f"{label:32s}: " + " -> ".join(order))
    return order


def main() -> None:
    timing = DramTiming.for_clock(DdrGeneration.DDR2, 333)
    print("Fig. 1 input buffer: demand1(BA1) prefetch1(BA2) request1(BA3)")
    print("                     demand2(BA1, conflicts demand1)")
    print("                     prefetch2(BA4) request2(BA4, row-hit)\n")
    schedule_with(SdramAwareFlowController(timing), "priority-equal ([4], PCT=1)")
    schedule_with(
        PfsMemoryFlowController(SdramAwareFlowController(timing)),
        "priority-first (PFS)",
    )
    schedule_with(GssFlowController(timing, pct=5), "GSS hybrid (PCT=5)")
    print(
        "\nThe hybrid serves both demands early but separates them with a"
        "\ndifferent-bank packet, avoiding the bank conflict PFS incurs."
    )


if __name__ == "__main__":
    main()
