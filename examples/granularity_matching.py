"""SAGM demonstration: access-granularity mismatch and its fix.

Part 1 recreates Fig. 2 / Fig. 5 at the device level: a stream of 8-byte
codec requests against a DDR II device in BL 8 mode wastes three quarters
of every burst, while the SAGM configuration (BL 4 mode + auto-precharge)
moves only requested data and needs no PRE command slots.

Part 2 shows the split plans of Section IV-C (the paper's 'BL 9' example)
and the end-to-end effect: the same Blu-ray system simulated with GSS
alone and with GSS+SAGM.

Run with::

    python examples/granularity_matching.py
"""

from itertools import count

from repro import DdrGeneration, NocDesign, SystemConfig, run_config
from repro.core.sagm import SagmSplitter, split_plan
from repro.dram import (
    DramTiming,
    MemoryRequest,
    PagePolicy,
    SdramDevice,
    ThinMemorySubsystem,
)
from repro.sim.stats import StatsCollector


def drive_device(burst_beats: int, page_policy: PagePolicy, ap_tags: bool):
    """Run 32 eight-byte (2-beat) codec reads through a bare subsystem."""
    stats = StatsCollector()
    timing = DramTiming.for_clock(DdrGeneration.DDR2, 333)
    device = SdramDevice(timing, stats=stats)
    subsystem = ThinMemorySubsystem(
        device, burst_beats=burst_beats, page_policy=page_policy
    )
    ids = count()
    pending = [
        MemoryRequest(
            request_id=next(ids), master=0, bank=i % 4, row=i // 16,
            column=(i * 16) % 1024, beats=2, is_read=True, ap_tag=ap_tags,
        )
        for i in range(32)
    ]
    cycle = 0
    done = 0
    while done < 32 and cycle < 5_000:
        if pending and subsystem.can_accept(pending[0]):
            subsystem.enqueue(pending.pop(0), cycle)
        subsystem.tick(cycle)
        done += len(subsystem.drain_finished())
        cycle += 1
    return stats, cycle


def main() -> None:
    print("Part 1 — device-level granularity mismatch (32 x 8-byte reads)")
    for label, burst, policy, tags in [
        ("BL 8 mode (CONV / [4])", 8, PagePolicy.OPEN_PAGE, False),
        ("BL 4 mode + AP (SAGM)", 4, PagePolicy.PARTIALLY_OPEN, True),
    ]:
        stats, cycles = drive_device(burst, policy, tags)
        print(
            f"  {label:24s} useful beats={stats.useful_beats:4d} "
            f"wasted={stats.wasted_beats:4d} "
            f"PRE commands={stats.commands_issued.get('PRE', 0):2d} "
            f"cycles={cycles}"
        )

    print("\nPart 2 — Section IV-C split plans (sizes in beats)")
    for ddr in DdrGeneration:
        gran = ddr.sagm_granularity_beats
        print(f"  {ddr.value}: 18-beat packet -> {split_plan(18, gran)}")

    splitter = SagmSplitter(DdrGeneration.DDR2)
    ids = count(100)
    parent = MemoryRequest(request_id=1, master=0, bank=0, row=0, column=1006,
                           beats=18, is_read=True)
    parts = splitter.split(parent, ids)
    print(f"  split of {parent}:")
    for part in parts:
        print(f"    {part}")

    print("\nPart 3 — end-to-end effect on the Blu-ray system (DDR II, 266 MHz)")
    for design in (NocDesign.GSS, NocDesign.GSS_SAGM):
        metrics = run_config(SystemConfig(
            app="bluray", ddr=DdrGeneration.DDR2, clock_mhz=266,
            design=design, cycles=15_000, warmup=2_500,
        ))
        print(
            f"  {design.value:10s} utilization={metrics.utilization:.3f} "
            f"(bus occupancy {metrics.raw_utilization:.3f}) "
            f"latency={metrics.latency_all:.1f} "
            f"row-hit rate={metrics.row_hit_rate:.2f}"
        )


if __name__ == "__main__":
    main()
