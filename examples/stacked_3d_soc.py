"""A 3-D stacked SoC on a p = 7 mesh.

The paper notes that its router generalizes to 3-D meshes (``p`` rises
from 5 to 7 ports, Section IV-A).  This example stacks the dual-DTV-class
workload across two 2x2 layers — memory-side logic on the bottom layer,
bandwidth-hungry media cores directly above the memory corner — and runs
the design comparison end to end through UP/DOWN links.

Run with::

    python examples/stacked_3d_soc.py
"""

from repro import NocDesign, SystemConfig, run_config
from repro.workloads.apps import APP_MODELS, AppModel
from repro.workloads.cores import (
    audio_core,
    cpu_core,
    display_core,
    enhancer_core,
    graphics_core,
    h264_codec_core,
)


def stacked_soc() -> AppModel:
    return AppModel(
        name="stacked_3d",
        mesh_width=2,
        mesh_height=2,
        mesh_depth=2,
        cores=[
            # bottom layer (shares the memory corner)
            cpu_core(gap_mean=30.0),
            h264_codec_core(gap_mean=9.0),
            graphics_core(gap_mean=60.0),
            # top layer, stacked over the memory via one vertical hop
            enhancer_core(gap_mean=120.0),
            display_core(gap_mean=160.0),
            audio_core(gap_mean=100.0),
            h264_codec_core(gap_mean=12.0),
        ],
    )


def main() -> None:
    APP_MODELS["stacked_3d"] = stacked_soc
    print(f"{'design':18s} {'utilization':>11s} {'latency':>9s} {'demand':>8s}")
    for design in (NocDesign.SDRAM_AWARE, NocDesign.GSS, NocDesign.GSS_SAGM):
        metrics = run_config(SystemConfig(
            app="stacked_3d",
            design=design,
            clock_mhz=333,
            priority_enabled=True,
            cycles=15_000,
            warmup=2_500,
        ))
        print(
            f"{design.value:18s} {metrics.utilization:11.3f} "
            f"{metrics.latency_all:9.1f} {metrics.latency_demand:8.1f}"
        )


if __name__ == "__main__":
    main()
