"""Fig. 5 as ASCII timing diagrams.

Renders the paper's Fig. 5 story directly from the device model: in BL 4
mode a row-missing access stream needs three commands per two data cycles,
so PRE commands collide with CAS commands on the single command bus —
unless the CAS executes with auto-precharge, which removes the PRE from
the stream entirely.

Run with::

    python examples/timing_diagram.py
"""

from itertools import count

from repro.dram.controller import CommandEngine, PagePolicy
from repro.dram.device import SdramDevice
from repro.dram.request import MemoryRequest
from repro.dram.timing import DramTiming
from repro.dram.waveform import attach
from repro.sim.config import DdrGeneration

ids = count()


def conflicting_stream(n=6):
    """Every request misses (two banks, alternating rows)."""
    return [
        MemoryRequest(request_id=next(ids), master=0, bank=i % 2, row=i,
                      column=0, beats=4, is_read=True, ap_tag=True)
        for i in range(n)
    ]


def run(page_policy):
    device = SdramDevice(DramTiming.for_clock(DdrGeneration.DDR2, 333))
    capture = attach(device)
    engine = CommandEngine(device, burst_beats=4, page_policy=page_policy,
                           window=8)
    pending = conflicting_stream()
    cycle = 0
    while (pending or not engine.idle) and cycle < 300:
        if pending and engine.has_space:
            engine.accept(pending.pop(0), cycle)
        engine.tick(cycle)
        engine.drain_finished()
        cycle += 1
    return capture, cycle


def main() -> None:
    print("BL 4, open page (explicit PRE commands compete for the bus):\n")
    capture, cycles = run(PagePolicy.OPEN_PAGE)
    print(capture.render(end=min(80, capture.horizon)))
    print(f"\n  -> {cycles} cycles, "
          f"{sum(1 for _, c in capture.commands if c.kind.value == 'PRE')} PRE commands\n")

    print("BL 4 with auto-precharge (Fig. 5(c): no PRE, no command delay):\n")
    capture, cycles = run(PagePolicy.PARTIALLY_OPEN)
    print(capture.render(end=min(80, capture.horizon)))
    print(f"\n  -> {cycles} cycles, "
          f"{sum(1 for _, c in capture.commands if c.kind.value == 'PRE')} PRE commands")


if __name__ == "__main__":
    main()
