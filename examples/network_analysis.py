"""Post-run analysis: per-core latencies, tail latency, link hotspots.

Runs the single-DTV model under the full proposal and prints the analysis
views a designer debugs with: which core starves, what the 95th/99th
percentile latency looks like (what a real-time core must provision for),
how much bandwidth the granularity mismatch wastes, and which NoC links
carry the heat.

Run with::

    python examples/network_analysis.py
"""

from repro import NocDesign, SystemConfig
from repro.core.system import build_system
from repro.noc.telemetry import render_link_report
from repro.sim.analysis import (
    bandwidth_share,
    per_master_report,
    render_master_report,
    tail_latencies,
)

CYCLES = 15_000


def main() -> None:
    config = SystemConfig(
        app="single_dtv", design=NocDesign.GSS_SAGM,
        priority_enabled=True, cycles=CYCLES, warmup=2_500,
    )
    system = build_system(config)
    # keep raw samples so percentiles are available
    system.stats.keep_samples = True
    system.stats.all_packets.keep_samples = True
    system.stats.demand_packets.keep_samples = True
    metrics = system.run()

    print(f"== {config.label}: util={metrics.utilization:.3f}, "
          f"latency={metrics.latency_all:.1f} ==\n")

    names = {i: spec.name for i, spec in enumerate(system.app.cores)}
    print("Per-core latency:")
    print(render_master_report(per_master_report(system.stats, names)))

    print("\nTail latency (cycles):")
    for label, tail in tail_latencies(system.stats).items():
        print(f"  {label:7s} mean={tail.mean:6.1f} p50={tail.p50:6.1f} "
              f"p95={tail.p95:6.1f} p99={tail.p99:6.1f} max={tail.maximum}")

    share = bandwidth_share(system.stats)
    print(f"\nBandwidth: {share['useful']:.1%} useful, "
          f"{share['wasted']:.1%} overfetched")

    print("\nHottest NoC links:")
    print(render_link_report(system.network, CYCLES))


if __name__ == "__main__":
    main()
