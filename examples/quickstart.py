"""Quickstart: simulate one SoC configuration and print its metrics.

Builds the paper's single-DTV model on a 3x3 mesh with DDR II SDRAM at
333 MHz, runs each NoC design for 20 000 cycles, and prints the three
headline metrics of the paper's evaluation: memory utilization, average
memory latency of all packets, and average latency of CPU demand packets.

Run with::

    python examples/quickstart.py
"""

from repro import NocDesign, SystemConfig, run_config


def main() -> None:
    print(f"{'design':18s} {'utilization':>11s} {'latency(all)':>13s} {'latency(demand)':>16s}")
    for design in (
        NocDesign.CONV,
        NocDesign.SDRAM_AWARE,   # the state-of-the-art baseline [4]
        NocDesign.GSS,           # this paper's guaranteed-SDRAM-service router
        NocDesign.GSS_SAGM,      # + SDRAM access granularity matching
    ):
        config = SystemConfig(
            app="single_dtv",
            design=design,
            clock_mhz=333,
            priority_enabled=True,
            cycles=20_000,
            warmup=3_000,
        )
        metrics = run_config(config)
        print(
            f"{design.value:18s} {metrics.utilization:11.3f} "
            f"{metrics.latency_all:13.1f} {metrics.latency_demand:16.1f}"
        )
    print(
        "\nExpected shape: GSS+SAGM gives the best utilization and the"
        "\nshortest demand latency; CONV pays the thread-pipeline overhead."
    )


if __name__ == "__main__":
    main()
